"""Integration tests for hot/cold tiered placement through Prism."""

from __future__ import annotations

import pytest

from repro.core import pointers as ptr
from repro.core.checker import audit
from repro.core.config import TIER_SPREAD, PrismConfig
from repro.core.prism import Prism
from repro.storage.specs import FLASH_SSD_GEN4_SPEC, QLC_SSD_SPEC

KB = 1024


def build_tiered(**overrides) -> Prism:
    base = dict(
        num_threads=2,
        num_ssds=1,
        ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(1024 * KB),
        chunk_size=32 * KB,
        pwb_capacity=64 * KB,
        svc_capacity=32 * KB,
        hsit_capacity=50_000,
        gc_free_threshold=0.3,
        enable_tiering=True,
        num_cold_ssds=1,
        cold_ssd_spec=QLC_SSD_SPEC.with_capacity(4096 * KB),
    )
    base.update(overrides)
    return Prism(PrismConfig(**base))


def freeze_everything_cold(**overrides) -> Prism:
    """A store whose reclaim demotes every record: the hot threshold
    sits above the sketch's max count (15) and the recency window is
    zero, so nothing ever qualifies as hot."""
    return build_tiered(
        tier_hot_threshold=16, tier_recency_window=0,
        tier_promote_threshold=1, **overrides,
    )


def tier_of(store: Prism, key: bytes) -> str:
    idx = store.index.lookup(key, None)
    assert idx is not None
    loc = ptr.decode(ptr.clear_dirty(store.hsit.location_word(idx)))
    assert loc.in_vs, "value still in PWB; flush first"
    return "cold" if store.tiering.is_cold_vs(loc.vs_id) else "fast"


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
def test_tiered_layout_fast_then_cold():
    store = build_tiered(num_ssds=2, num_cold_ssds=3)
    assert len(store.ssds) == 2
    assert len(store.cold_ssds) == 3
    assert len(store.storages) == 5
    assert len(store.combiners) == 5
    assert [vs.vs_id for vs in store.storages] == [0, 1, 2, 3, 4]
    assert store.ssds[0].name == "ssd0"
    assert store.cold_ssds[0].name == "cssd0"
    assert not store.tiering.is_cold_vs(1)
    assert store.tiering.is_cold_vs(2)


def test_tiering_off_builds_no_cold_pool():
    store = Prism(PrismConfig(num_ssds=2))
    assert store.cold_ssds == []
    assert store.tiering is None
    assert not any(k.startswith("tier_") for k in store.stats())


def test_tiered_mirrors_cover_both_tiers():
    store = build_tiered(num_ssds=1, num_cold_ssds=2, mirror_chunks=True)
    assert [ssd.name for ssd in store.mirror_ssds] == ["ssd0m", "cssd0m", "cssd1m"]
    for vs, mirror in zip(store.storages, store.mirror_ssds):
        assert vs.mirror is mirror


def test_stats_surface_present_when_tiering_on():
    store = build_tiered()
    stats = store.stats()
    for key in (
        "tier_demotions", "tier_promotions", "tier_promotions_stale",
        "tier_cold_reclaims", "tier_fast_reads", "tier_cold_reads",
        "tier_demoted_bytes", "tier_promoted_bytes", "tier_demotion_waf",
        "tier_fast_occupancy", "tier_cold_occupancy",
        "tier_fast_used_bytes", "tier_cold_used_bytes",
        "tier_cold_bytes_written",
    ):
        assert key in stats, key


# ----------------------------------------------------------------------
# demotion
# ----------------------------------------------------------------------
def test_cold_records_land_on_cold_tier():
    store = freeze_everything_cold()
    vals = {}
    for i in range(80):
        k = b"k%04d" % i
        v = bytes([i % 256]) * 2048
        store.put(k, v)
        vals[k] = v
    store.flush()
    stats = store.stats()
    assert stats["tier_cold_reclaims"] + stats["tier_demotions"] > 0
    assert stats["tier_cold_used_bytes"] > 0
    # Every value still reads back exactly.
    for k, v in vals.items():
        assert store.get(k) == v
    assert any(tier_of(store, k) == "cold" for k in vals)


def test_hot_records_stay_fast():
    store = build_tiered(tier_hot_threshold=2, tier_recency_window=8)
    hot = b"hotkey"
    store.put(hot, b"x" * 1024)
    for _ in range(6):
        store.get(hot)
    # Fill with cold data to force reclaim cycles.
    for i in range(60):
        store.put(b"cold%04d" % i, bytes([i % 256]) * 2048)
    store.get(hot)
    store.flush()
    assert tier_of(store, hot) == "fast"


# ----------------------------------------------------------------------
# promotion
# ----------------------------------------------------------------------
def test_reread_promotes_back_to_fast():
    store = freeze_everything_cold()
    target = b"warming"
    value = b"w" * 2048
    store.put(target, value)
    for i in range(60):
        store.put(b"filler%03d" % i, bytes([i % 256]) * 2048)
    store.flush()
    assert tier_of(store, target) == "cold"
    # Re-access: the cold read queues a promotion; the next tick
    # drains it through the normal write path.
    got = store.get(target)
    assert got == value
    store.flush()
    assert store.stats()["tier_promotions"] >= 1
    assert tier_of(store, target) == "fast"
    assert store.get(target) == value


def test_stale_promotion_never_clobbers_newer_value():
    """Fresh-key protection: a promotion whose observed word was
    superseded by a client put must be dropped, not published."""
    store = freeze_everything_cold()
    key = b"racer"
    store.put(key, b"old" * 700)
    for i in range(60):
        store.put(b"filler%03d" % i, bytes([i % 256]) * 2048)
    store.flush()
    assert tier_of(store, key) == "cold"
    idx = store.index.lookup(key, None)
    stale_word = ptr.clear_dirty(store.hsit.location_word(idx))
    # Overwrite with a fresh value (lands in the PWB), then hand the
    # tier manager the outdated promotion an unlucky interleaving
    # would have queued.
    new_value = b"new" * 700
    store.put(key, new_value)
    store.tiering.enqueue_promotion(idx, stale_word, b"old" * 700)
    store._drain_promotions()
    assert store.stats()["tier_promotions_stale"] >= 1
    assert store.get(key) == new_value
    store.flush()
    assert store.get(key) == new_value


# ----------------------------------------------------------------------
# spread baseline
# ----------------------------------------------------------------------
def test_spread_policy_round_robins_over_every_tier():
    store = build_tiered(tier_policy=TIER_SPREAD, num_cold_ssds=2)
    for i in range(80):
        store.put(b"k%04d" % i, bytes([i % 256]) * 2048)
    store.flush()
    stats = store.stats()
    # The baseline spills onto the cold tier without any demotions.
    assert stats["tier_cold_used_bytes"] > 0
    assert stats["tier_demotions"] == 0
    assert stats["tier_cold_reclaims"] == 0


# ----------------------------------------------------------------------
# integrity across tiers
# ----------------------------------------------------------------------
def test_audit_green_after_tiered_churn():
    store = freeze_everything_cold(enable_checksums=True)
    vals = {}
    for round_ in range(3):
        for i in range(50):
            k = b"k%04d" % i
            v = bytes([(i + round_) % 256]) * 1536
            store.put(k, v)
            vals[k] = v
        for i in range(0, 50, 3):
            store.get(b"k%04d" % i)
    store.flush()
    report = audit(store)
    assert report.violations == [], report.violations
    for k, v in vals.items():
        assert store.get(k) == v


def test_tiered_store_recovers_after_crash():
    store = freeze_everything_cold(enable_checksums=True)
    vals = {}
    for i in range(60):
        k = b"k%04d" % i
        v = bytes([i % 256]) * 1536
        store.put(k, v)
        vals[k] = v
    store.flush()
    store.crash()
    store.recover()
    assert audit(store).violations == []
    for k, v in vals.items():
        assert store.get(k) == v


def test_hardware_cost_includes_cold_pool():
    tiered = PrismConfig(
        enable_tiering=True, num_cold_ssds=2, cold_ssd_spec=QLC_SSD_SPEC
    )
    flat = PrismConfig()
    assert tiered.hardware_cost() == pytest.approx(
        flat.hardware_cost() + 2 * QLC_SSD_SPEC.cost()
    )
