"""Property test: demotion + promotion round-trip values byte-identically.

Every value pushed through the full tier cycle — PWB → cold-tier
reclaim (demotion) → re-access → promotion back to fast — must come
back bit-for-bit, for arbitrary value bytes and sizes.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import pointers as ptr
from repro.core.config import PrismConfig
from repro.core.prism import Prism
from repro.storage.specs import FLASH_SSD_GEN4_SPEC, QLC_SSD_SPEC

KB = 1024


def freeze_everything_cold() -> Prism:
    """Reclaim demotes every record: hot threshold above the sketch's
    max count, zero recency window; one cold read promotes."""
    return Prism(
        PrismConfig(
            num_threads=2,
            num_ssds=1,
            ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(1024 * KB),
            chunk_size=32 * KB,
            pwb_capacity=64 * KB,
            svc_capacity=32 * KB,
            hsit_capacity=50_000,
            gc_free_threshold=0.3,
            enable_tiering=True,
            num_cold_ssds=1,
            cold_ssd_spec=QLC_SSD_SPEC.with_capacity(4096 * KB),
            tier_hot_threshold=16,
            tier_recency_window=0,
            tier_promote_threshold=1,
            # SVC off so the second read provably comes from a device
            # (otherwise a DRAM hit could mask a corrupted cold copy).
            enable_svc=False,
        )
    )


def tier_of(store: Prism, idx: int) -> str:
    loc = ptr.decode(ptr.clear_dirty(store.hsit.location_word(idx)))
    assert loc.in_vs
    return "cold" if store.tiering.is_cold_vs(loc.vs_id) else "fast"


@settings(max_examples=15, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=2048), min_size=1, max_size=12))
def test_demote_promote_roundtrip_is_byte_identical(values):
    store = freeze_everything_cold()
    keys = [b"key%03d" % i for i in range(len(values))]
    for k, v in zip(keys, values):
        store.put(k, v)
    # Even with a zero recency window, a key touched at the current
    # tracker tick counts as recent; one sentinel put pushes every
    # tested key out of the window before reclaim classifies them.
    store.put(b"zz-sentinel", b"x")
    store.flush()  # reclaim: everything demotes to the cold tier
    idxs = {k: store.index.lookup(k, None) for k in keys}
    assert all(tier_of(store, idx) == "cold" for idx in idxs.values())
    # Cold reads return the exact bytes and queue promotions.
    for k, v in zip(keys, values):
        assert store.get(k) == v
    store.flush()  # drain any promotions still pending
    stats = store.stats()
    assert stats["tier_cold_reclaims"] + stats["tier_demotions"] >= len(keys)
    assert stats["tier_promotions"] >= 1
    # Promoted values are still byte-identical, now on the fast tier.
    for k, v in zip(keys, values):
        assert store.get(k) == v
    assert any(tier_of(store, idx) == "fast" for idx in idxs.values())
