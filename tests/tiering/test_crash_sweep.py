"""Crash exploration through the tier-migration protocol.

The demotion and promotion paths publish forward pointers exactly like
reclaim and GC do, so a power failure at any point inside them must
leave a recoverable store that honors the durability contract.
"""

from __future__ import annotations

import pytest

from repro.faults.crash_sweep import CrashSweep, default_ops, tiered_store_factory

TIER_LABELS = {
    "tier.demote.pre_publish",
    "tier.demote.published",
    "tier.promote.pre_publish",
    "tier.promote.published",
}


def test_workload_reaches_every_tier_crash_label():
    sweep = CrashSweep(tiered_store_factory, default_ops())
    workload, _recovery = sweep.discover()
    missing = TIER_LABELS - set(workload)
    assert not missing, f"tier crash labels never reached: {missing}"


def test_crash_inside_demotion_and_promotion_recovers():
    """Sweep just the tier labels (the full-label sweep runs under the
    slow_tiering marker): crash at each, recover, audit, and check
    acknowledged durability."""
    sweep = CrashSweep(tiered_store_factory, default_ops())
    for label in sorted(TIER_LABELS):
        outcome = sweep.verify_label(label)
        assert outcome.fired, label
        assert outcome.ok, (
            f"{label}: audit={outcome.audit_violations} "
            f"durability={outcome.durability_violations}"
        )


@pytest.mark.slow_tiering
def test_full_tiered_crash_sweep_is_green():
    sweep = CrashSweep(tiered_store_factory, default_ops())
    report = sweep.run()
    assert TIER_LABELS <= set(report.workload_labels)
    assert report.ok, report.summary()


@pytest.mark.slow_tiering
def test_tiered_crash_fuzz_is_green():
    sweep = CrashSweep(tiered_store_factory, default_ops())
    outcomes = sweep.fuzz(trials=10, seed=9)
    bad = [o for o in outcomes if not o.ok]
    assert not bad, [str(o) for o in bad]
