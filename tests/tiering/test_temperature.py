"""Unit tests for the per-key temperature tracker."""

import pytest

from repro.tiering import TemperatureTracker


def test_untouched_key_is_cold():
    t = TemperatureTracker()
    assert t.frequency(42) == 0
    assert not t.is_recent(42)
    assert not t.is_hot(42)
    assert not t.should_promote(42)


def test_touch_raises_frequency():
    t = TemperatureTracker(hot_threshold=3)
    for _ in range(3):
        t.touch(7)
    assert t.frequency(7) >= 3
    assert t.is_hot(7)


def test_recency_protects_single_touch():
    t = TemperatureTracker(hot_threshold=5, recency_window=10)
    t.touch(7)
    assert t.is_recent(7)
    assert t.is_hot(7)  # recent, despite frequency 1 < 5
    assert not t.is_hot(7, pressure=True)  # pressure drops the grace


def test_recency_expires_after_window():
    t = TemperatureTracker(hot_threshold=5, recency_window=3)
    t.touch(7)
    for other in range(100, 104):
        t.touch(other)
    assert not t.is_recent(7)
    assert not t.is_hot(7)


def test_forget_clears_recency_stamp():
    t = TemperatureTracker(hot_threshold=5, recency_window=1000)
    t.touch(7)
    t.forget(7)
    assert not t.is_recent(7)


def test_promote_threshold_independent_of_hot():
    t = TemperatureTracker(hot_threshold=10, promote_threshold=2)
    t.touch(7)
    t.touch(7)
    assert t.should_promote(7)
    assert t.frequency(7) < 10


def test_crash_clears_all_state():
    t = TemperatureTracker()
    for _ in range(5):
        t.touch(7)
    t.crash()
    assert t.frequency(7) == 0
    assert not t.is_recent(7)


def test_keys_do_not_alias_trivially():
    t = TemperatureTracker()
    for _ in range(4):
        t.touch(1)
    # A count-min sketch can over-estimate, never under-estimate, and
    # distinct keys should not inherit each other's counts here.
    assert t.frequency(1) >= 4
    assert t.frequency(2) < 4


def test_validation():
    with pytest.raises(ValueError):
        TemperatureTracker(hot_threshold=0)
    with pytest.raises(ValueError):
        TemperatureTracker(promote_threshold=0)
    with pytest.raises(ValueError):
        TemperatureTracker(recency_window=-1)
