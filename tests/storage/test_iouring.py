import pytest

from repro.storage.iouring import IORequest, IOUring, split_into_batches
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from repro.storage.ssd import SSDDevice

MB = 1024**2


@pytest.fixture
def ring(ssd):
    return IOUring(ssd, queue_depth=8)


class TestIORequest:
    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            IORequest("write", 0, 10)

    def test_write_size_from_data(self):
        req = IORequest("write", 0, 0, data=b"abcd")
        assert req.size == 4

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            IORequest("fsync", 0, 0)


class TestSubmission:
    def test_read_fills_result(self, ssd, ring):
        ssd.write_raw(0, b"hello")
        req = IORequest("read", 0, 5)
        ring.submit(0.0, [req])
        assert req.result == b"hello"
        assert req.completion > 0

    def test_submit_returns_before_completion(self, ring):
        req = IORequest("read", 0, 4096)
        control_back = ring.submit(0.0, [req])
        assert control_back < req.completion

    def test_empty_batch(self, ring):
        assert ring.submit(1.0, []) == 1.0

    def test_batch_amortizes_syscall(self, ssd):
        ring_a = IOUring(ssd, 64)
        reqs = [IORequest("read", i * 4096, 4096) for i in range(16)]
        t_batched = ring_a.submit(0.0, reqs)
        ring_b = IOUring(SSDDevice(ssd.spec), 64)
        t_single = 0.0
        for i in range(16):
            t_single = ring_b.submit(t_single, [IORequest("read", i * 4096, 4096)])
        assert t_batched < t_single

    def test_queue_depth_caps_outstanding(self, ssd):
        """With QD=1 requests serialize; deeper rings pipeline."""
        shallow = IOUring(ssd, 1)
        reqs = [IORequest("read", i * 4096, 4096) for i in range(8)]
        shallow.submit(0.0, reqs)
        serial_done = max(r.completion for r in reqs)

        deep = IOUring(SSDDevice(ssd.spec), 64)
        reqs2 = [IORequest("read", i * 4096, 4096) for i in range(8)]
        deep.submit(0.0, reqs2)
        pipelined_done = max(r.completion for r in reqs2)
        assert pipelined_done < serial_done / 3

    def test_submit_one_skips_syscall_cost(self, ssd):
        ring = IOUring(ssd, 8)
        req = IORequest("read", 0, 512)
        done = ring.submit_one(0.0, req)
        assert done == req.completion
        # roughly device latency, no extra syscall window
        assert done < 55e-6

    def test_submit_and_wait(self, ring):
        reqs = [IORequest("read", 0, 512), IORequest("read", 4096, 512)]
        done = ring.submit_and_wait(0.0, reqs)
        assert done == max(r.completion for r in reqs)

    def test_write_request_lands_on_device(self, ssd, ring):
        ring.submit(0.0, [IORequest("write", 8192, 0, data=b"persist")])
        assert ssd.read_raw(8192, 7) == b"persist"

    def test_idle_tracking(self, ring):
        assert ring.idle_at(0.0)
        req = IORequest("read", 0, 4096)
        ring.submit(0.0, [req])
        assert not ring.idle_at(req.completion - 1e-9)
        assert ring.idle_at(req.completion + 1e-9)

    def test_inflight_count(self, ring):
        reqs = [IORequest("read", i * 4096, 512) for i in range(3)]
        ring.submit(0.0, reqs)
        assert ring.inflight_at(0.0) in (2, 3)  # submission costs may reap none
        assert ring.inflight_at(max(r.completion for r in reqs)) == 0

    def test_average_batch(self, ring):
        assert ring.average_batch() == 0.0
        ring.submit(0.0, [IORequest("read", 0, 512)] )
        ring.submit(0.0, [IORequest("read", 0, 512), IORequest("read", 4096, 512)])
        assert ring.average_batch() == pytest.approx(1.5)

    def test_invalid_queue_depth(self, ssd):
        with pytest.raises(ValueError):
            IOUring(ssd, 0)


def test_split_into_batches():
    reqs = [IORequest("read", i, 1) for i in range(10)]
    batches = split_into_batches(reqs, 4)
    assert [len(b) for b in batches] == [4, 4, 2]
    assert batches[0][0] is reqs[0]
