import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.vthread import VThread
from repro.storage.base import OutOfSpaceError, StorageError
from repro.storage.nvm import CACHE_LINE, NVMDevice, PersistentHeap


class TestAllocation:
    def test_alloc_is_aligned(self, nvm):
        addr = nvm.alloc(100, align=256)
        assert addr % 256 == 0

    def test_alloc_monotonic(self, nvm):
        a = nvm.alloc(64)
        b = nvm.alloc(64)
        assert b >= a + 64

    def test_alloc_beyond_capacity(self):
        small = NVMDevice(NVMDevice().spec.with_capacity(4096))
        with pytest.raises(OutOfSpaceError):
            small.alloc(8192)

    def test_alloc_rejects_nonpositive(self, nvm):
        with pytest.raises(ValueError):
            nvm.alloc(0)


class TestLoadStore:
    def test_store_then_load(self, nvm, thread):
        addr = nvm.alloc(64)
        nvm.store(thread, addr, b"hello")
        assert nvm.load(thread, addr, 5) == b"hello"

    def test_load_sees_unflushed_stores(self, nvm):
        """Like a real CPU: loads read through the cache."""
        addr = nvm.alloc(64)
        nvm.store(None, addr, b"dirty")
        assert nvm.load(None, addr, 5) == b"dirty"

    def test_out_of_range_rejected(self, nvm):
        with pytest.raises(StorageError):
            nvm.load(None, nvm.capacity - 1, 2)
        with pytest.raises(StorageError):
            nvm.store(None, -1, b"x")

    def test_store_crossing_page_boundary(self, nvm):
        addr = 4090  # crosses the 4096 page edge
        payload = bytes(range(12))
        nvm.store(None, addr, payload)
        nvm.flush(None, addr, 12)
        assert nvm.load(None, addr, 12) == payload


class TestCrashSemantics:
    def test_unflushed_store_lost_on_crash(self, nvm):
        addr = nvm.alloc(64)
        nvm.store(None, addr, b"gone")
        nvm.crash()
        assert nvm.load(None, addr, 4) == b"\0\0\0\0"

    def test_flushed_store_survives_crash(self, nvm):
        addr = nvm.alloc(64)
        nvm.store(None, addr, b"kept")
        nvm.flush(None, addr, 4)
        nvm.crash()
        assert nvm.load(None, addr, 4) == b"kept"

    def test_persist_is_durable(self, nvm):
        addr = nvm.alloc(64)
        nvm.persist(None, addr, b"done")
        nvm.crash()
        assert nvm.load(None, addr, 4) == b"done"

    def test_crash_rolls_back_to_last_flush(self, nvm):
        addr = nvm.alloc(64)
        nvm.persist(None, addr, b"v1")
        nvm.store(None, addr, b"v2")
        nvm.crash()
        assert nvm.load(None, addr, 2) == b"v1"

    def test_partial_line_flush_granularity(self, nvm):
        """Flushing one byte persists its whole cache line."""
        addr = nvm.alloc(CACHE_LINE * 2, align=CACHE_LINE)
        nvm.store(None, addr, b"a" * CACHE_LINE)
        nvm.flush(None, addr, 1)
        nvm.crash()
        assert nvm.load(None, addr, CACHE_LINE) == b"a" * CACHE_LINE

    def test_unrelated_line_not_flushed(self, nvm):
        addr = nvm.alloc(CACHE_LINE * 2, align=CACHE_LINE)
        nvm.store(None, addr, b"a")
        nvm.store(None, addr + CACHE_LINE, b"b")
        nvm.flush(None, addr, 1)
        nvm.crash()
        assert nvm.load(None, addr, 1) == b"a"
        assert nvm.load(None, addr + CACHE_LINE, 1) == b"\0"

    def test_write_durable_skips_cache(self, nvm):
        addr = nvm.alloc(8192, align=CACHE_LINE)
        nvm.write_durable(None, addr, b"x" * 8192)
        nvm.crash()
        assert nvm.load(None, addr, 8192) == b"x" * 8192

    def test_crash_counter(self, nvm):
        nvm.crash()
        nvm.crash()
        assert nvm.crashes == 2

    def test_unflushed_lines_tracking(self, nvm):
        addr = nvm.alloc(CACHE_LINE * 4, align=CACHE_LINE)
        nvm.store(None, addr, b"x")
        nvm.store(None, addr + CACHE_LINE, b"y")
        assert nvm.unflushed_lines() == 2
        nvm.flush(None, addr, 1)
        assert nvm.unflushed_lines() == 1

    @settings(max_examples=40, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2000),
                st.binary(min_size=1, max_size=64),
                st.booleans(),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_crash_preserves_exactly_flushed_state(self, writes):
        """Property: after a crash, memory equals the model built from
        flushed stores only (at line granularity, flushed lines win)."""
        nvm = NVMDevice()
        base = nvm.alloc(4096, align=CACHE_LINE)
        durable = bytearray(4096)
        volatile = bytearray(4096)
        dirty_lines = set()
        for offset, data, flush in writes:
            nvm.store(None, base + offset, data)
            volatile[offset : offset + len(data)] = data
            for line in range(offset // CACHE_LINE, (offset + len(data) - 1) // CACHE_LINE + 1):
                dirty_lines.add(line)
            if flush:
                nvm.flush(None, base + offset, len(data))
                for line in range(
                    offset // CACHE_LINE, (offset + len(data) - 1) // CACHE_LINE + 1
                ):
                    lo, hi = line * CACHE_LINE, (line + 1) * CACHE_LINE
                    durable[lo:hi] = volatile[lo:hi]
                    dirty_lines.discard(line)
        nvm.crash()
        assert nvm.load(None, base, 4096) == bytes(durable)


class TestTiming:
    def test_store_is_cheap_flush_pays(self, nvm, thread):
        addr = nvm.alloc(64)
        nvm.store(thread, addr, b"x" * 64)
        t_after_store = thread.now
        nvm.flush(thread, addr, 64)
        assert thread.now - t_after_store > 5e-8  # flush costs real time
        assert t_after_store < 1e-7  # store is cache-speed

    def test_accounting(self, nvm, thread):
        addr = nvm.alloc(1024)
        nvm.persist(thread, addr, b"x" * 100)
        assert nvm.bytes_written >= 100
        nvm.load(thread, addr, 100)
        assert nvm.bytes_read == 100


class TestPersistentHeap:
    class Node:
        persistent_fields = ("items", "label")

        def __init__(self):
            self.items = []
            self.label = "init"

    def test_commit_and_crash_roundtrip(self, nvm):
        heap = PersistentHeap(nvm)
        node = self.Node()
        handle = heap.allocate(node, 128)
        node.items.append(1)
        heap.commit(handle)
        node.items.append(2)
        node.label = "volatile"
        heap.crash()
        assert node.items == [1]
        assert node.label == "init"

    def test_uncommitted_object_vanishes(self, nvm):
        heap = PersistentHeap(nvm)
        handle = heap.allocate(self.Node(), 128)
        heap.crash()
        with pytest.raises(KeyError):
            heap.get(handle)

    def test_free(self, nvm):
        heap = PersistentHeap(nvm)
        handle = heap.allocate(self.Node(), 128)
        heap.commit(handle)
        heap.free(handle)
        with pytest.raises(KeyError):
            heap.get(handle)
        assert heap.live_objects == 0

    def test_object_without_fields_rejected(self, nvm):
        heap = PersistentHeap(nvm)
        handle = heap.allocate(self.Node(), 64)
        heap._objects[handle] = object()
        with pytest.raises(TypeError):
            heap.commit(handle)

    def test_commit_unknown_handle(self, nvm):
        with pytest.raises(KeyError):
            PersistentHeap(nvm).commit(42)

    def test_space_accounted_on_device(self, nvm):
        heap = PersistentHeap(nvm)
        before = nvm.used
        heap.allocate(self.Node(), 4096)
        assert nvm.used >= before + 4096
