import pytest

from repro.storage.base import OutOfSpaceError
from repro.storage.dram import DRAMDevice
from repro.storage.specs import DRAM_SPEC

MB = 1024**2


@pytest.fixture
def dram():
    return DRAMDevice(DRAM_SPEC.with_capacity(1 * MB))


def test_allocate_and_release(dram):
    dram.allocate(1000)
    assert dram.used == 1000
    dram.release(400)
    assert dram.used == 600
    assert dram.free == 1 * MB - 600


def test_allocation_respects_capacity(dram):
    dram.allocate(1 * MB)
    with pytest.raises(OutOfSpaceError):
        dram.allocate(1)


def test_release_more_than_used(dram):
    dram.allocate(10)
    with pytest.raises(ValueError):
        dram.release(11)


def test_negative_amounts_rejected(dram):
    with pytest.raises(ValueError):
        dram.allocate(-1)
    with pytest.raises(ValueError):
        dram.release(-1)


def test_would_fit(dram):
    assert dram.would_fit(1 * MB)
    dram.allocate(1 * MB)
    assert not dram.would_fit(1)


def test_crash_empties(dram):
    dram.allocate(5000)
    dram.crash()
    assert dram.used == 0


def test_timed_access_is_fast(dram, thread):
    dram.read(thread, 1024)
    dram.write(thread, 1024)
    assert thread.now < 1e-6  # DRAM is sub-microsecond


def test_accounting(dram, thread):
    dram.read(thread, 100)
    dram.write(thread, 200)
    assert dram.bytes_read == 100
    assert dram.bytes_written == 200
