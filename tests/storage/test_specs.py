import pytest

from repro.storage.specs import (
    DEVICE_CATALOG,
    DRAM_SPEC,
    FLASH_SSD_GEN4_SPEC,
    NVM_SPEC,
    QLC_SSD_SPEC,
    format_catalog,
)

GB = 1024**3
TB = 1024**4
US = 1e-6


def test_catalog_has_all_six_devices():
    # Figure 1's five evaluated devices plus the QLC cold-tier SSD
    # (ISSUE 9's capacity tier).
    assert len(DEVICE_CATALOG) == 6


def test_qlc_is_the_capacity_tier():
    """The cold tier trades everything for $/TB: slower, cheaper, and
    far less endurance per TB than the fast Gen4 flash."""
    assert QLC_SSD_SPEC.cost_per_tb < FLASH_SSD_GEN4_SPEC.cost_per_tb / 3
    assert QLC_SSD_SPEC.capacity > FLASH_SSD_GEN4_SPEC.capacity
    assert QLC_SSD_SPEC.read_bandwidth < FLASH_SSD_GEN4_SPEC.read_bandwidth
    qlc_pbw_per_tb = QLC_SSD_SPEC.endurance_pbw / (QLC_SSD_SPEC.capacity / TB)
    fast_pbw_per_tb = FLASH_SSD_GEN4_SPEC.endurance_pbw / (
        FLASH_SSD_GEN4_SPEC.capacity / TB
    )
    assert qlc_pbw_per_tb < fast_pbw_per_tb


def test_figure1_nvm_numbers():
    assert NVM_SPEC.read_bandwidth == int(6.8 * GB)
    assert NVM_SPEC.write_bandwidth == int(1.9 * GB)
    assert NVM_SPEC.read_latency == pytest.approx(0.30 * US)
    assert NVM_SPEC.cost_per_tb == 4096.0


def test_figure1_flash_numbers():
    assert FLASH_SSD_GEN4_SPEC.read_bandwidth == 7 * GB
    assert FLASH_SSD_GEN4_SPEC.write_bandwidth == 5 * GB
    assert FLASH_SSD_GEN4_SPEC.read_latency == pytest.approx(50 * US)
    assert FLASH_SSD_GEN4_SPEC.cost_per_tb == 150.0


def test_cost_ratio_nvm_vs_flash_is_27x():
    """The paper's headline: flash is ~27x cheaper per TB than NVM."""
    ratio = NVM_SPEC.cost_per_tb / FLASH_SSD_GEN4_SPEC.cost_per_tb
    assert 27 <= ratio <= 28


def test_no_clear_performance_hierarchy():
    """Figure 1's point: NVM wins latency, flash wins bandwidth."""
    assert NVM_SPEC.read_latency < FLASH_SSD_GEN4_SPEC.read_latency
    assert FLASH_SSD_GEN4_SPEC.read_bandwidth > NVM_SPEC.read_bandwidth


def test_with_capacity_scales_cost():
    half = FLASH_SSD_GEN4_SPEC.with_capacity(FLASH_SSD_GEN4_SPEC.capacity // 2)
    assert half.cost() == pytest.approx(FLASH_SSD_GEN4_SPEC.cost() / 2)


def test_with_capacity_rejects_nonpositive():
    with pytest.raises(ValueError):
        FLASH_SSD_GEN4_SPEC.with_capacity(0)


def test_endurance_gap():
    """NVM endurance is orders of magnitude above flash (292 vs 0.6 PBW)."""
    assert NVM_SPEC.endurance_pbw / FLASH_SSD_GEN4_SPEC.endurance_pbw > 400


def test_dram_endurance_infinite():
    assert DRAM_SPEC.endurance_bytes() == float("inf")


def test_format_catalog_mentions_every_device():
    table = format_catalog()
    for name in DEVICE_CATALOG:
        assert name in table
