import pytest

from repro.storage.crash import CrashPoint, CrashScenario, SimulatedCrash
from repro.storage.dram import DRAMDevice
from repro.storage.nvm import NVMDevice
from repro.storage.specs import DRAM_SPEC


def test_register_requires_crashable():
    scenario = CrashScenario()
    with pytest.raises(TypeError):
        scenario.register(object())


def test_power_failure_hits_all_components():
    scenario = CrashScenario()
    nvm = scenario.register(NVMDevice())
    dram = scenario.register(DRAMDevice(DRAM_SPEC))
    addr = nvm.alloc(64)
    nvm.store(None, addr, b"lost")
    dram.allocate(100)
    scenario.power_failure()
    assert nvm.load(None, addr, 4) == b"\0\0\0\0"
    assert dram.used == 0
    assert scenario.crash_count == 1


def test_crash_point_fires_only_when_armed():
    scenario = CrashScenario()
    point = CrashPoint(scenario)
    point.maybe_crash("after-write")  # unarmed: no-op
    point.arm("after-write")
    with pytest.raises(SimulatedCrash):
        point.maybe_crash("after-write")
    assert point.fired == "after-write"
    # disarms after firing
    point.maybe_crash("after-write")


def test_crash_point_ignores_other_labels():
    scenario = CrashScenario()
    point = CrashPoint(scenario)
    point.arm("b")
    point.maybe_crash("a")
    assert scenario.crash_count == 0


def test_power_failure_volatile_components_crash_first():
    order = []

    class Dev:
        def __init__(self, name, volatile):
            self.name = name
            self.volatile = volatile

        def crash(self):
            order.append(self.name)

    scenario = CrashScenario()
    scenario.register(Dev("nvm", volatile=False))
    scenario.register(Dev("dram", volatile=True))
    scenario.register(Dev("ssd", volatile=False))
    scenario.register(Dev("svc", volatile=True))
    scenario.power_failure()
    assert order[:2] == ["dram", "svc"]  # volatile first, stable order
    assert order[2:] == ["nvm", "ssd"]


def test_crash_point_nth_occurrence():
    point = CrashPoint(CrashScenario())
    with pytest.raises(ValueError):
        point.arm("loop", occurrence=0)
    point.arm("loop", occurrence=3)
    point.maybe_crash("loop")
    point.maybe_crash("loop")
    with pytest.raises(SimulatedCrash) as err:
        point.maybe_crash("loop")
    assert err.value.label == "loop"


def test_crash_point_recording_counts_labels():
    point = CrashPoint(CrashScenario())
    point.start_recording()
    for _ in range(3):
        point.maybe_crash("a")
    point.maybe_crash("b")
    seen = point.stop_recording()
    assert seen == {"a": 3, "b": 1}
    point.maybe_crash("a")  # recording stopped
    assert point.seen == seen


def test_null_crash_point_is_inert():
    from repro.storage.crash import NULL_CRASH_POINT

    NULL_CRASH_POINT.maybe_crash("anything")
    with pytest.raises(RuntimeError):
        NULL_CRASH_POINT.arm("anything")
