import pytest

from repro.storage.crash import CrashPoint, CrashScenario, SimulatedCrash
from repro.storage.dram import DRAMDevice
from repro.storage.nvm import NVMDevice
from repro.storage.specs import DRAM_SPEC


def test_register_requires_crashable():
    scenario = CrashScenario()
    with pytest.raises(TypeError):
        scenario.register(object())


def test_power_failure_hits_all_components():
    scenario = CrashScenario()
    nvm = scenario.register(NVMDevice())
    dram = scenario.register(DRAMDevice(DRAM_SPEC))
    addr = nvm.alloc(64)
    nvm.store(None, addr, b"lost")
    dram.allocate(100)
    scenario.power_failure()
    assert nvm.load(None, addr, 4) == b"\0\0\0\0"
    assert dram.used == 0
    assert scenario.crash_count == 1


def test_crash_point_fires_only_when_armed():
    scenario = CrashScenario()
    point = CrashPoint(scenario)
    point.maybe_crash("after-write")  # unarmed: no-op
    point.arm("after-write")
    with pytest.raises(SimulatedCrash):
        point.maybe_crash("after-write")
    assert point.fired == "after-write"
    # disarms after firing
    point.maybe_crash("after-write")


def test_crash_point_ignores_other_labels():
    scenario = CrashScenario()
    point = CrashPoint(scenario)
    point.arm("b")
    point.maybe_crash("a")
    assert scenario.crash_count == 0
