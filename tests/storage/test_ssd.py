import pytest

from repro.sim.vthread import VThread
from repro.storage.base import StorageError
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from repro.storage.ssd import SSDDevice

MB = 1024**2


class TestBasicIO:
    def test_write_read_roundtrip(self, ssd, thread):
        ssd.write(thread, 4096, b"payload")
        assert ssd.read(thread, 4096, 7) == b"payload"

    def test_unwritten_space_reads_zero(self, ssd):
        assert ssd.read_raw(0, 8) == b"\0" * 8

    def test_cross_page_write(self, ssd):
        data = bytes(range(256)) * 40  # 10240 bytes, crosses pages
        ssd.write_raw(4000, data)
        assert ssd.read_raw(4000, len(data)) == data

    def test_out_of_range(self, ssd):
        with pytest.raises(StorageError):
            ssd.read_raw(ssd.capacity, 1)
        with pytest.raises(StorageError):
            ssd.write_raw(-1, b"x")

    def test_overwrite(self, ssd):
        ssd.write_raw(0, b"aaaa")
        ssd.write_raw(0, b"bb")
        assert ssd.read_raw(0, 4) == b"bbaa"


class TestTiming:
    def test_read_latency_dominates_small_reads(self, ssd, thread):
        ssd.read(thread, 0, 1024)
        # ~50 us device latency for flash
        assert 45e-6 < thread.now < 80e-6

    def test_write_latency(self, ssd, thread):
        ssd.write(thread, 0, b"x" * 1024)
        assert 15e-6 < thread.now < 40e-6

    def test_large_transfer_bandwidth_bound(self, ssd, thread):
        ssd.read(thread, 0, 64 * MB)
        floor = 64 * MB / ssd.spec.read_bandwidth
        assert thread.now >= floor

    def test_async_does_not_block(self, ssd):
        done = ssd.write_async(0.0, 0, b"x" * 4096)
        assert done > 0
        # data is visible immediately (durable at `done`)
        assert ssd.read_raw(0, 4) == b"xxxx"

    def test_io_counters(self, ssd, thread):
        ssd.read(thread, 0, 512)
        ssd.write(thread, 0, b"x")
        assert ssd.read_ios == 1
        assert ssd.write_ios == 1

    def test_accounting(self, ssd, thread):
        ssd.write(thread, 0, b"x" * 100)
        ssd.read(thread, 0, 100)
        assert ssd.bytes_written == 100
        assert ssd.bytes_read == 100


class TestScanAndEndurance:
    def test_scan_time_scales_with_bytes(self, ssd):
        assert ssd.scan_time(2 * MB) > ssd.scan_time(1 * MB)

    def test_endurance_consumed(self):
        ssd = SSDDevice(FLASH_SSD_GEN4_SPEC.with_capacity(1024**2))
        assert ssd.endurance_consumed() == 0.0
        ssd.bytes_written = int(ssd.spec.endurance_bytes() / 2)
        assert ssd.endurance_consumed() == pytest.approx(0.5)

    def test_crash_preserves_completed_writes(self, ssd):
        ssd.write_raw(0, b"safe")
        ssd.crash()
        assert ssd.read_raw(0, 4) == b"safe"
