import pytest

from repro.storage.raid import RAID0
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from repro.storage.ssd import SSDDevice

MB = 1024**2
STRIPE = 512 * 1024


@pytest.fixture
def members():
    spec = FLASH_SSD_GEN4_SPEC.with_capacity(16 * MB)
    return [SSDDevice(spec, name=f"m{i}") for i in range(4)]


@pytest.fixture
def raid(members):
    return RAID0(members, stripe_size=STRIPE)


def test_requires_members():
    with pytest.raises(ValueError):
        RAID0([])


def test_capacity_is_sum(raid, members):
    assert raid.capacity == sum(m.capacity for m in members)


def test_roundtrip_within_stripe(raid, thread):
    raid.write(thread, 100, b"stripe-data")
    assert raid.read(thread, 100, 11) == b"stripe-data"


def test_roundtrip_across_stripes(raid, thread):
    data = bytes((i % 251 for i in range(2 * STRIPE + 999)))
    raid.write(thread, STRIPE - 500, data)
    assert raid.read(thread, STRIPE - 500, len(data)) == data


def test_striping_distributes_to_members(raid, members, thread):
    raid.write(thread, 0, b"x" * (4 * STRIPE))
    assert all(m.bytes_written == STRIPE for m in members)


def test_parallel_write_faster_than_single(members, thread):
    from repro.sim.vthread import VThread

    raid = RAID0(members, stripe_size=STRIPE)
    raid.write(thread, 0, b"x" * (4 * STRIPE))
    t_raid = thread.now

    single = SSDDevice(FLASH_SSD_GEN4_SPEC.with_capacity(16 * MB))
    t2 = VThread(1)
    single.write(t2, 0, b"x" * (4 * STRIPE))
    assert t_raid < t2.now


def test_out_of_range(raid):
    with pytest.raises(ValueError):
        raid.read(None, raid.capacity, 1)


def test_async_paths(raid):
    done = raid.write_async(0.0, 0, b"y" * STRIPE)
    assert done > 0
    data, rdone = raid.read_async(done, 0, STRIPE)
    assert data == b"y" * STRIPE
    assert rdone > done


def test_aggregate_accounting(raid, thread):
    raid.write(thread, 0, b"z" * 1000)
    raid.read(thread, 0, 1000)
    assert raid.bytes_written == 1000
    assert raid.bytes_read == 1000


def test_scan_time_parallel(raid, members):
    alone = members[0].scan_time(4 * MB)
    together = raid.scan_time(4 * MB)
    assert together < alone


def test_crash_propagates_to_members(thread):
    class CountingSSD(SSDDevice):
        crashes = 0

        def crash(self):
            self.crashes += 1

    spec = FLASH_SSD_GEN4_SPEC.with_capacity(16 * MB)
    members = [CountingSSD(spec, name=f"c{i}") for i in range(4)]
    raid = RAID0(members, stripe_size=STRIPE)
    raid.write(thread, 0, b"w" * (4 * STRIPE))
    raid.crash()
    assert [m.crashes for m in members] == [1, 1, 1, 1]
    # an SSD power failure is harmless to completed writes
    assert raid.read(thread, 0, 4) == b"wwww"


class TestMemberFaults:
    """Per-member fault surfacing and single-failure degraded reads."""

    @staticmethod
    def _inject(members, dead=None):
        from repro.faults.injector import FaultConfig, FaultInjector

        inj = FaultInjector(FaultConfig(seed=5))
        for m in members:
            m.attach_injector(inj)
        if dead is not None:
            inj.kill_device(members[dead].name)
        return inj

    def test_member_failure_reports_index(self, raid, members, thread):
        from repro.faults.errors import DeviceDeadError

        raid.write(thread, 0, b"q" * (4 * STRIPE))
        self._inject(members, dead=2)
        with pytest.raises(DeviceDeadError) as err:
            raid.read(thread, 2 * STRIPE, 16)
        assert err.value.raid_member == 2
        with pytest.raises(DeviceDeadError) as werr:
            raid.write(thread, 2 * STRIPE, b"nope")
        assert werr.value.raid_member == 2

    def test_healthy_members_unaffected(self, raid, members, thread):
        raid.write(thread, 0, b"q" * (4 * STRIPE))
        self._inject(members, dead=2)
        assert raid.read(thread, 0, 16) == b"q" * 16  # member 0's stripe

    def test_degraded_read_zero_fills_dead_extents(self, raid, members, thread):
        data = bytes(i % 251 for i in range(4 * STRIPE))
        raid.write(thread, 0, data)
        self._inject(members, dead=1)
        got, missing = raid.degraded_read(thread, 0, 4 * STRIPE)
        assert missing == [(STRIPE, STRIPE)]
        expect = data[:STRIPE] + b"\0" * STRIPE + data[2 * STRIPE :]
        assert got == expect

    def test_degraded_read_requires_exactly_one_dead(self, raid, members, thread):
        from repro.storage.base import StorageError

        raid.write(thread, 0, b"q" * (4 * STRIPE))
        inj = self._inject(members)
        with pytest.raises(StorageError):
            raid.degraded_read(thread, 0, STRIPE)  # nobody dead: use read()
        inj.kill_device(members[0].name)
        inj.kill_device(members[3].name)
        with pytest.raises(StorageError):
            raid.degraded_read(thread, 0, STRIPE)  # double failure
