"""System-wide virtual-time invariants.

The timing model only makes sense if certain properties hold no matter
what the stores do: thread clocks never go backwards, latencies are
non-negative, device byte accounting matches what applications wrote,
and identical runs are bit-for-bit deterministic.
"""

import random

import pytest

from repro.baselines.kvell import KVell, KVellConfig
from repro.core.prism import Prism
from repro.sim.vthread import VThread
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from tests.conftest import small_prism_config

MB = 1024**2


def _mixed_ops(store, thread, steps, seed):
    rng = random.Random(seed)
    stamps = []
    for step in range(steps):
        key = b"v%03d" % rng.randrange(150)
        roll = rng.random()
        before = thread.now
        if roll < 0.5:
            store.put(key, bytes([step % 256]) * rng.randrange(1, 400), thread)
        elif roll < 0.8:
            store.get(key, thread)
        elif roll < 0.92:
            store.scan(key, rng.randrange(1, 8), thread)
        else:
            store.delete(key, thread)
        stamps.append((before, thread.now))
    return stamps


class TestMonotonicity:
    def test_prism_thread_clock_never_regresses(self):
        store = Prism(small_prism_config())
        thread = VThread(0, store.clock)
        stamps = _mixed_ops(store, thread, 1200, seed=1)
        for before, after in stamps:
            assert after >= before

    def test_kvell_thread_clock_never_regresses(self):
        store = KVell(
            KVellConfig(
                num_ssds=2,
                ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB),
                page_cache_bytes=256 * 1024,
            )
        )
        thread = VThread(0, store.clock)
        stamps = _mixed_ops(store, thread, 800, seed=2)
        for before, after in stamps:
            assert after >= before

    def test_global_clock_tracks_max(self):
        store = Prism(small_prism_config())
        threads = [VThread(i, store.clock) for i in range(3)]
        for i, thread in enumerate(threads):
            store.put(b"k%d" % i, b"v", thread)
        assert store.clock.now >= max(t.now for t in threads) - 1e-12


class TestDeterminism:
    def test_identical_runs_identical_timing(self):
        def run():
            store = Prism(small_prism_config())
            thread = VThread(0, store.clock)
            _mixed_ops(store, thread, 600, seed=3)
            return thread.now, store.stats()

        t1, s1 = run()
        t2, s2 = run()
        assert t1 == t2
        assert s1 == s2

    def test_bench_runner_deterministic(self):
        from repro.bench import build_prism, preload, run_workload
        from repro.workloads import WORKLOADS

        def run():
            store = build_prism(
                num_threads=4, dataset_bytes=512 * 1024, expected_keys=1500
            )
            preload(store, 500, 512, num_threads=4)
            result = run_workload(
                store, WORKLOADS["A"], 800, 500, num_threads=4, value_size=512
            )
            return result.duration, result.latency.p99()

        assert run() == run()


class TestAccounting:
    def test_prism_device_bytes_cover_app_bytes_after_flush(self):
        store = Prism(small_prism_config())
        thread = VThread(0, store.clock)
        for i in range(200):
            store.put(b"u%04d" % i, b"x" * 500, thread)  # unique keys
        store.flush()
        # Every live unique value must physically exist on flash.
        assert store.ssd_bytes_written() >= 200 * 500

    def test_latencies_never_negative(self):
        store = Prism(small_prism_config())
        thread = VThread(0, store.clock)
        stamps = _mixed_ops(store, thread, 600, seed=5)
        assert all(after - before >= 0 for before, after in stamps)

    def test_background_threads_never_outrun_global_clock(self):
        store = Prism(small_prism_config())
        thread = VThread(0, store.clock)
        _mixed_ops(store, thread, 1500, seed=6)
        for bg in (store._bg_reclaim, store._bg_gc, store._bg_cache):
            assert bg.now <= store.clock.now + 1e-12
