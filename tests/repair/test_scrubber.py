"""Background scrubber: finds and repairs seeded corruption, refreshes
rotted mirrors, and is a structural no-op when injection is off."""

import random

import pytest

from repro.core import pointers as ptr
from repro.core.checker import audit
from repro.core.prism import Prism
from repro.faults.injector import FaultConfig
from repro.repair import Scrubber, rebuild_storage
from tests.repair.test_repair import _integrity_config, _load, _vs_keys


@pytest.fixture
def store() -> Prism:
    return Prism(_integrity_config())


def _rot_records(store, count, seed=11):
    """Seeded at-rest bit-rot on ``count`` distinct stored records."""
    records = []
    for vs in store.storages:
        for chunk_id, info in vs._chunks.items():
            for offset, slot in info.slots.items():
                if slot.valid:
                    records.append((vs, chunk_id, offset, slot.size))
    rng = random.Random(seed)
    picked = rng.sample(records, count)
    for vs, chunk_id, offset, size in picked:
        store.injector.corrupt_at_rest(
            vs.ssd,
            chunk_id * vs.chunk_size + offset,
            vs.header_size + size,
        )
    return picked


def test_scrub_finds_and_repairs_seeded_corruption(store):
    _load(store)
    expect = {key: store.get(key) for key, _ in store.index.items()}
    _rot_records(store, 5)
    report = Scrubber(store).scrub_once()
    assert report.corrupt_found == 5
    assert report.repaired == 5
    assert report.unrecoverable == 0
    assert report.chunks_scanned > 0
    assert report.duration > 0
    assert store.metrics.counter("scrub.chunks_scanned").value == report.chunks_scanned
    # Post-scrub the store is pristine: audit (incl. I7) is clean and
    # every value reads back.
    assert audit(store).ok
    for key, value in expect.items():
        assert store.get(key) == value


def test_scrub_respects_bandwidth_budget(store):
    _load(store)
    _rot_records(store, 1)
    fast = Scrubber(store, bandwidth=1024**3).scrub_once()
    # Fresh identical store: the budget is the only difference.
    slow_store = Prism(_integrity_config())
    _load(slow_store)
    _rot_records(slow_store, 1)
    slow = Scrubber(slow_store, bandwidth=1024**2).scrub_once()
    assert slow.bytes_read == fast.bytes_read
    assert slow.duration > fast.duration


def test_scrub_refreshes_rotted_mirror(store):
    _load(store)
    key, loc = _vs_keys(store)[0][0]
    vs = store.storages[0]
    addr = loc.chunk_id * vs.chunk_size + loc.vs_offset + vs.header_size
    raw = bytearray(vs.mirror.read_raw(addr, 1))
    raw[0] ^= 0x04
    vs.mirror.write_raw(addr, bytes(raw))
    store.injector.silent_injected += 1  # mark corruption as possible
    report = Scrubber(store).scrub_once()
    assert report.mirrors_refreshed == 1
    assert report.corrupt_found == 0
    # The mirror copy is whole again: killing the primary afterwards
    # still leaves a full rebuild possible.
    store.injector.kill_device(vs.ssd.name)
    assert rebuild_storage(store, 0).ok


def test_scrub_noop_without_corruption_possible(store):
    _load(store)
    before = store.clock.now
    reads = [vs.ssd.bytes_read for vs in store.storages]
    report = Scrubber(store).scrub_once()
    # Structural no-op: nothing scanned, no device traffic, no virtual
    # time consumed — a corruption-free store is bit-identical with or
    # without a scrubber attached.
    assert report.chunks_scanned == 0
    assert report.records_verified == 0
    assert store.clock.now == before
    assert [vs.ssd.bytes_read for vs in store.storages] == reads


def test_scrub_inactive_without_checksums():
    store = Prism(_integrity_config(enable_checksums=False, mirror_chunks=False))
    _load(store)
    scrubber = Scrubber(store)
    store.injector.silent_injected += 1
    assert not scrubber.active()  # checksums off: nothing it could verify
    assert scrubber.scrub_once().chunks_scanned == 0


@pytest.mark.slow_scrub
def test_scrub_fuzz_random_corruption_never_serves_wrong_bytes():
    rng = random.Random(7)
    for trial in range(5):
        store = Prism(_integrity_config())
        _load(store, n=60)
        expect = {key: store.get(key) for key, _ in store.index.items()}
        _rot_records(store, rng.randrange(1, 12), seed=trial)
        report = Scrubber(store).scrub_once()
        assert report.unrecoverable == 0
        for key, value in expect.items():
            assert store.get(key) == value
        assert audit(store).ok
