"""Cross-device self-healing: mirror/PWB repair sources, read-repair,
and full dead-storage rebuild."""

import pytest

from repro.core import pointers as ptr
from repro.core.checker import audit
from repro.core.prism import Prism
from repro.faults.errors import (
    CorruptionError,
    ReadDegradedError,
    UnrecoverableCorruptionError,
)
from repro.faults.injector import FaultConfig
from repro.repair import fetch_value, rebuild_storage
from tests.conftest import KB, small_prism_config


def _integrity_config(**overrides):
    # No SVC so every read hits the owning medium; injector attached
    # (zero rates) so devices can be killed and bytes rotted on demand.
    defaults = dict(
        pwb_capacity=16 * KB,
        enable_svc=False,
        enable_checksums=True,
        mirror_chunks=True,
        enable_metrics=True,
        faults=FaultConfig(),
    )
    defaults.update(overrides)
    return small_prism_config(**defaults)


@pytest.fixture
def store() -> Prism:
    return Prism(_integrity_config())


def _load(store, n=80):
    for i in range(n):
        store.put(b"k%04d" % i, bytes([i % 256]) * 700)
    store.flush()


def _vs_keys(store):
    """Map vs_id -> [(key, Location)] for keys stored in Value Storage."""
    out = {vs.vs_id: [] for vs in store.storages}
    for key, idx in store.index.items():
        loc = ptr.decode(ptr.clear_dirty(store.hsit.location_word(idx)))
        if loc.in_vs:
            out[loc.vs_id].append((key, loc))
    return out


def _rot_primary(store, vs_id, loc):
    vs = store.storages[vs_id]
    size = vs.slot_size(loc.chunk_id, loc.vs_offset)
    store.injector.corrupt_at_rest(
        vs.ssd,
        loc.chunk_id * vs.chunk_size + loc.vs_offset,
        vs.header_size + size,
    )


def _rot_mirror(store, vs_id, loc):
    vs = store.storages[vs_id]
    addr = loc.chunk_id * vs.chunk_size + loc.vs_offset + vs.header_size
    raw = bytearray(vs.mirror.read_raw(addr, 1))
    raw[0] ^= 0x10
    vs.mirror.write_raw(addr, bytes(raw))


class TestReadRepair:
    def test_corrupt_primary_heals_from_mirror(self, store):
        _load(store)
        by_vs = _vs_keys(store)
        key, loc = by_vs[0][0]
        expect = store.get(key)
        _rot_primary(store, 0, loc)
        # The corrupt primary fails its checksum; the read repairs from
        # the mirror and returns the right bytes.
        assert store.get(key) == expect
        assert store.metrics.counter("corruption.detected").value >= 1
        assert store.metrics.counter("corruption.repaired").value >= 1
        # The healed record was re-published: reading again is clean.
        assert store.get(key) == expect
        assert audit(store).ok

    def test_both_copies_corrupt_is_typed_loss(self, store):
        _load(store)
        key, loc = _vs_keys(store)[0][0]
        _rot_primary(store, 0, loc)
        _rot_mirror(store, 0, loc)
        with pytest.raises(UnrecoverableCorruptionError) as err:
            store.get(key)
        assert err.value.key == key
        assert store.metrics.counter("corruption.unrecoverable").value >= 1
        # Typed loss, not silent absence: the pointer stays, later
        # reads keep failing loudly.
        with pytest.raises(UnrecoverableCorruptionError):
            store.get(key)

    def test_repair_from_unreclaimed_pwb_copy(self):
        store = Prism(_integrity_config(mirror_chunks=False))
        key, value = b"pwb-key", b"p" * 500
        store.put(key, value)  # lives in the PWB
        idx = store.index.lookup(key)
        vs = store.storages[0]
        placements, done = vs.write_records(store.clock.now, [(idx, value)])
        ((c, o, _s),) = placements
        # Publish the VS location but leave the PWB window untouched —
        # the state a crash between reclaim-publish and release leaves.
        store.hsit.publish_location(idx, ptr.encode_vs(0, c, o))
        _rot = store.injector.corrupt_at_rest(
            vs.ssd, c * vs.chunk_size + o, vs.header_size + len(value)
        )
        assert store.get(key) == value  # healed from the PWB copy
        assert store.metrics.counter("corruption.repaired").value >= 1

    def test_fetch_value_reports_source(self, store):
        _load(store)
        key, loc = _vs_keys(store)[0][0]
        idx = store.index.lookup(key)
        fetched = fetch_value(store, idx, 0, loc.chunk_id, loc.vs_offset)
        assert fetched is not None
        value, source = fetched
        assert source == "mirror"
        assert value == store.get(key)


class TestDeadDevice:
    def test_dead_vs_reads_heal_from_mirror(self, store):
        _load(store)
        by_vs = _vs_keys(store)
        assert by_vs[0] and by_vs[1]
        expect = {key: store.get(key) for key, _ in by_vs[0]}
        store.injector.kill_device(store.storages[0].ssd.name)
        # Reads of the dead storage's keys repair through the mirror
        # instead of raising ReadDegradedError (PR 2 behaviour).
        for key, _loc in by_vs[0]:
            assert store.get(key) == expect[key]

    def test_dead_vs_without_mirror_still_degrades(self):
        store = Prism(_integrity_config(mirror_chunks=False))
        _load(store)
        by_vs = _vs_keys(store)
        store.injector.kill_device(store.storages[0].ssd.name)
        with pytest.raises(ReadDegradedError):
            store.get(by_vs[0][0][0])

    def test_rebuild_restores_every_key(self, store):
        _load(store)
        by_vs = _vs_keys(store)
        expect = {}
        for keys in by_vs.values():
            for key, _loc in keys:
                expect[key] = store.get(key)
        store.injector.kill_device(store.storages[0].ssd.name)
        report = rebuild_storage(store, 0)
        assert report.ok
        assert report.records_repaired == len(by_vs[0])
        assert report.duration > 0
        # Every pointer moved off the dead device...
        assert not _vs_keys(store)[0]
        # ...so no read is degraded and every value survives.
        degraded = 0
        for key, value in expect.items():
            try:
                assert store.get(key) == value
            except ReadDegradedError:
                degraded += 1
        assert degraded == 0
        assert store.metrics.gauge("repair.rebuild_seconds").value == report.duration
        assert audit(store).ok

    def test_rebuild_counts_losses_without_mirror(self):
        store = Prism(_integrity_config(mirror_chunks=False))
        _load(store)
        by_vs = _vs_keys(store)
        store.injector.kill_device(store.storages[0].ssd.name)
        report = rebuild_storage(store, 0)
        # No mirror and no PWB copies: everything on the dead device is
        # honestly reported lost, nothing silently dropped.
        assert report.records_lost == len(by_vs[0])
        assert not report.ok
