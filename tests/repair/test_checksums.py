"""Checksummed record framing: roundtrips, corruption detection, and
bit-identity of the legacy format when checksums are off."""

import pytest

from repro.core.config import PrismConfig
from repro.core.prism import Prism
from repro.core.pwb import PersistentWriteBuffer
from repro.core.value_storage import (
    CHECKED_RECORD_HEADER,
    RECORD_HEADER,
    ValueStorage,
    record_crc,
)
from repro.faults.errors import CorruptionError
from repro.faults.injector import FaultConfig, FaultInjector
from tests.conftest import small_prism_config

KB = 1024


@pytest.fixture
def cvs(ssd):
    return ValueStorage(0, ssd, chunk_size=16 * KB, checksums=True)


class TestVSFraming:
    def test_checked_roundtrip(self, cvs):
        placements, _ = cvs.write_records(0.0, [(7, b"hello"), (8, b"world!")])
        for (idx, val), (c, o, _s) in zip([(7, b"hello"), (8, b"world!")], placements):
            assert cvs.read_record_raw(c, o) == (idx, val)

    def test_header_sizes(self, ssd, cvs):
        plain = ValueStorage(1, ssd, chunk_size=16 * KB)
        assert plain.header_size == RECORD_HEADER
        assert cvs.header_size == CHECKED_RECORD_HEADER
        assert cvs.record_bytes(10) == plain.record_bytes(10) + 4

    def test_bitflip_detected(self, cvs):
        ((c, o, _s),) = cvs.write_records(0.0, [(3, b"precious-bytes")])[0]
        raw = cvs.ssd.read_raw(c * cvs.chunk_size + o, cvs.header_size + 14)
        mutated = bytearray(raw)
        mutated[-1] ^= 0x40  # flip a payload bit
        cvs.ssd.write_raw(c * cvs.chunk_size + o, bytes(mutated))
        with pytest.raises(CorruptionError) as err:
            cvs.read_record_raw(c, o)
        assert err.value.device == cvs.ssd.name

    def test_header_corruption_detected(self, cvs):
        ((c, o, _s),) = cvs.write_records(0.0, [(3, b"vvvv")])[0]
        raw = bytearray(cvs.ssd.read_raw(c * cvs.chunk_size + o, cvs.header_size + 4))
        raw[0] ^= 0x01  # flip a backward-pointer bit
        cvs.ssd.write_raw(c * cvs.chunk_size + o, bytes(raw))
        with pytest.raises(CorruptionError):
            cvs.read_record_raw(c, o)

    def test_crc_function_covers_header_and_value(self):
        h = (1).to_bytes(8, "little") + (3).to_bytes(4, "little")
        assert record_crc(h, b"abc") != record_crc(h, b"abd")
        h2 = (2).to_bytes(8, "little") + (3).to_bytes(4, "little")
        assert record_crc(h, b"abc") != record_crc(h2, b"abc")


class TestPWBFraming:
    def test_checked_roundtrip(self, nvm):
        pwb = PersistentWriteBuffer(nvm, 0, 16 * KB, checksums=True)
        off = pwb.append(5, b"value-bytes")
        assert pwb.read(off) == (5, b"value-bytes")

    def test_corruption_detected(self, nvm):
        pwb = PersistentWriteBuffer(nvm, 0, 16 * KB, checksums=True)
        off = pwb.append(5, b"value-bytes")
        pos = pwb.base + off % pwb.capacity + pwb.header_size
        raw = bytearray(nvm._read_raw(pos, 5))
        raw[0] ^= 0x80
        nvm._write_raw(pos, bytes(raw))
        with pytest.raises(CorruptionError):
            pwb.read(off)


class TestInjectorSilentFaults:
    def test_bitflip_mutates_without_raising(self, ssd):
        inj = FaultInjector(FaultConfig(seed=3, bitflip_rate=1.0))
        ssd.attach_injector(inj)
        ssd.write(None, 0, b"\0" * 64)
        assert inj.silent_injected == 1
        data = ssd.read_raw(0, 64)
        assert sum(bin(b).count("1") for b in data) == 1  # exactly one bit flipped

    def test_torn_write_truncates(self, ssd):
        inj = FaultInjector(FaultConfig(seed=3, torn_write_rate=1.0))
        ssd.attach_injector(inj)
        ssd.write(None, 0, b"\xff" * 64)
        data = ssd.read_raw(0, 64)
        assert 0 < data.count(0) < 64  # a suffix never hit the media

    def test_zero_rates_draw_nothing(self, ssd):
        inj = FaultInjector(FaultConfig(seed=3))
        state = inj.rng.getstate()
        assert inj.corrupt_write(ssd, 0.0, 0, b"abc") == b"abc"
        assert inj.rng.getstate() == state
        assert not inj.silent_corruption_possible()

    def test_at_rest_flips_one_bit(self, ssd):
        inj = FaultInjector(FaultConfig(seed=3))
        ssd.write_raw(100, b"\0" * 32)
        where = inj.corrupt_at_rest(ssd, 100, 32)
        assert 100 <= where < 132
        assert inj.silent_corruption_possible()
        data = ssd.read_raw(100, 32)
        assert sum(bin(b).count("1") for b in data) == 1


class TestBitIdentity:
    def test_checksums_off_matches_legacy_layout(self, ssd):
        plain = ValueStorage(0, ssd, chunk_size=16 * KB)
        ((c, o, _s),) = plain.write_records(0.0, [(9, b"abc")])[0]
        raw = ssd.read_raw(c * plain.chunk_size + o, 12 + 3)
        assert raw == (9).to_bytes(8, "little") + (3).to_bytes(4, "little") + b"abc"

    def test_store_runs_identically_with_integrity_switches_off(self):
        def run(cfg):
            store = Prism(cfg)
            for i in range(120):
                store.put(b"k%03d" % i, bytes([i % 251]) * 600)
            for i in range(120):
                assert store.get(b"k%03d" % i) is not None
            store.flush()
            return store.clock.now, [
                store.hsit.location_word(idx) for _, idx in store.index.items()
            ]

        base = run(small_prism_config())
        again = run(small_prism_config(enable_checksums=False, mirror_chunks=False))
        assert base == again
