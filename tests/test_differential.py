"""Differential testing: every store must agree with every other.

One random operation schedule is replayed against Prism and all four
baselines; each result is compared against a dict model after every
operation.  Any divergence in any engine's visible semantics fails
here, regardless of which internal mechanism (compaction, GC,
reclamation, caching, eviction) produced it.
"""

import random

import pytest

from repro.baselines.kvell import KVell, KVellConfig
from repro.baselines.matrixkv import MatrixKV, MatrixKVConfig
from repro.baselines.rocksdb_nvm import RocksDBNVM, RocksDBNVMConfig
from repro.baselines.slmdb import SLMDB, SLMDBConfig
from repro.core.prism import Prism
from repro.sim.vthread import VThread
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from tests.conftest import small_prism_config

KB = 1024
MB = 1024**2
SPEC = FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB)


def _stores():
    return {
        "prism": Prism(small_prism_config()),
        "kvell": KVell(
            KVellConfig(num_ssds=2, ssd_spec=SPEC, page_cache_bytes=256 * KB)
        ),
        "matrixkv": MatrixKV(
            MatrixKVConfig(
                num_ssds=2, ssd_spec=SPEC, memtable_bytes=8 * KB,
                container_bytes=32 * KB, sstable_target_bytes=16 * KB,
                l1_target_bytes=128 * KB, block_cache_bytes=64 * KB,
                wal_capacity=1 * MB,
            )
        ),
        "rocksdb-nvm": RocksDBNVM(
            RocksDBNVMConfig(
                memtable_bytes=8 * KB, sstable_target_bytes=16 * KB,
                l1_target_bytes=128 * KB, block_cache_bytes=64 * KB,
                wal_capacity=1 * MB,
            )
        ),
        "slmdb": SLMDB(
            SLMDBConfig(
                num_ssds=2, ssd_spec=SPEC, memtable_bytes=8 * KB,
                sstable_target_bytes=16 * KB, os_page_cache_bytes=64 * KB,
            )
        ),
    }


def _schedule(seed, steps, key_space=150):
    rng = random.Random(seed)
    ops = []
    for step in range(steps):
        key = b"d%03d" % rng.randrange(key_space)
        roll = rng.random()
        if roll < 0.55:
            ops.append(("put", key, bytes([step % 256]) * rng.randrange(1, 300)))
        elif roll < 0.8:
            ops.append(("get", key, None))
        elif roll < 0.92:
            ops.append(("scan", key, rng.randrange(1, 10)))
        else:
            ops.append(("delete", key, None))
    return ops


@pytest.mark.parametrize("seed", [3, 44])
def test_all_stores_agree_with_model(seed):
    stores = _stores()
    threads = {name: VThread(0, store.clock) for name, store in stores.items()}
    model = {}
    for op, key, arg in _schedule(seed, steps=1200):
        if op == "put":
            model[key] = arg
            for name, store in stores.items():
                store.put(key, arg, threads[name])
        elif op == "get":
            expected = model.get(key)
            for name, store in stores.items():
                assert store.get(key, threads[name]) == expected, (name, key)
        elif op == "scan":
            expected = sorted(
                (k, v) for k, v in model.items() if k >= key
            )[:arg]
            for name, store in stores.items():
                assert store.scan(key, arg, threads[name]) == expected, (
                    name,
                    key,
                )
        else:
            model.pop(key, None)
            for name, store in stores.items():
                store.delete(key, threads[name])
    # final sweep
    for name, store in stores.items():
        full = store.scan(b"d", 1000, threads[name])
        assert full == sorted(model.items()), name


def test_flush_preserves_agreement():
    stores = _stores()
    threads = {name: VThread(0, store.clock) for name, store in stores.items()}
    model = {}
    rng = random.Random(9)
    for step in range(400):
        key = b"f%03d" % rng.randrange(80)
        value = bytes([step % 256]) * 150
        model[key] = value
        for name, store in stores.items():
            store.put(key, value, threads[name])
    for name, store in stores.items():
        store.flush()
    for key, value in model.items():
        for name, store in stores.items():
            assert store.get(key, threads[name]) == value, (name, key)
