"""Per-op phase tracing and device sampling against a live Prism."""

import pytest

from repro.core.prism import Prism
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.sampler import DeviceSampler
from repro.sim.vthread import VThread
from tests.conftest import small_prism_config


def _drive(store, ops=60, value=b"v" * 512):
    thread = VThread(0, store.clock, name="app-0")
    for i in range(ops):
        key = b"key-%06d" % (i % 20)
        store.put(key, value, thread)
        store.get(key, thread)
    store.scan(b"key-000000", 5, thread)
    store.delete(b"key-000000", thread)
    return thread


class TestPhaseTracing:
    def test_disabled_by_default(self):
        store = Prism(small_prism_config())
        assert store.metrics is NULL_REGISTRY
        _drive(store)
        assert store.metrics.to_dict()["histograms"] == {}

    def test_put_get_phases_recorded(self):
        store = Prism(small_prism_config(enable_metrics=True))
        assert isinstance(store.metrics, MetricsRegistry)
        _drive(store)
        hists = store.metrics.histograms
        for name in (
            "phase.put.index_lookup",
            "phase.put.pwb_append",
            "phase.put.publish",
            "phase.get.index_lookup",
            "phase.scan.index_scan",
            "phase.delete.index_lookup",
        ):
            assert name in hists, name
            assert hists[name].count > 0, name

    def test_phase_sum_bounded_by_op_latency(self):
        """Phases partition an op: their total cannot exceed the ops'
        wall time (virtual)."""
        store = Prism(small_prism_config(enable_metrics=True))
        thread = _drive(store)
        phase_total = sum(
            h.total
            for name, h in store.metrics.histograms.items()
            if name.startswith("phase.put.")
        )
        assert 0 < phase_total <= thread.now

    def test_svc_hit_miss_counters(self):
        store = Prism(small_prism_config(enable_metrics=True))
        _drive(store)
        counters = store.metrics.counters
        hits = counters.get("read.svc_hits")
        pwb = counters.get("read.pwb_hits")
        served = (hits.value if hits else 0) + (pwb.value if pwb else 0)
        misses = counters.get("read.svc_misses")
        assert served + (misses.value if misses else 0) > 0

    def test_metrics_do_not_change_simulation(self):
        """The zero-cost claim, end to end: identical workloads with
        tracing on and off land on identical virtual clocks and store
        state."""
        plain = Prism(small_prism_config())
        traced = Prism(small_prism_config(enable_metrics=True))
        t_plain = _drive(plain)
        t_traced = _drive(traced)
        assert t_plain.now == t_traced.now
        assert plain.clock.now == traced.clock.now
        assert len(plain) == len(traced)
        assert plain.stats() == traced.stats()


class TestStructuredEvents:
    def test_reclaim_events_structured(self):
        store = Prism(small_prism_config(enable_metrics=True))
        _drive(store, ops=400)
        reclaims = store.events.of_kind("reclaim")
        assert reclaims, "400 puts into a 64K PWB must trigger reclamation"
        for event in reclaims:
            assert event["pwb_id"] >= 0
            assert event["region_bytes"] > 0
            assert event["scanned_records"] >= event["live_records"] >= 0
            assert event["duration"] >= 0

    def test_gc_events_compat_property(self):
        """Legacy consumers read gc_events as a list of timestamps."""
        store = Prism(small_prism_config())
        store.events.emit(1.25, "gc", vs_id=0, victim_chunks=1,
                          moved_records=0, moved_bytes=0, chunks_freed=1,
                          duration=0.0)
        store.events.emit(2.0, "reclaim", pwb_id=0)
        assert store.gc_events == [1.25]


class TestDeviceSampler:
    def test_samples_all_device_series(self):
        store = Prism(small_prism_config(enable_metrics=True))
        registry = MetricsRegistry()
        sampler = DeviceSampler(registry, store)
        sampler.sample(store.clock.now)
        _drive(store, ops=100)
        sampler.sample(store.clock.now + 1e-3)
        names = set(registry.series)
        for vs_id in range(len(store.storages)):
            assert f"ssd.{vs_id}.queue_depth" in names
            assert f"ssd.{vs_id}.utilization" in names
        assert "nvm.bytes_flushed" in names
        assert "pwb.occupancy.mean" in names

    def test_utilization_bounded(self):
        store = Prism(small_prism_config(enable_metrics=True))
        registry = MetricsRegistry()
        sampler = DeviceSampler(registry, store)
        now = store.clock.now
        sampler.sample(now)
        for i in range(5):
            _drive(store, ops=40)
            sampler.sample(store.clock.now + i * 1e-4)
        for name, series in registry.series.items():
            if name.endswith(".utilization"):
                assert all(0.0 <= v <= 1.0 for v in series.values), name

    def test_nvm_flush_bytes_monotone(self):
        store = Prism(small_prism_config(enable_metrics=True))
        registry = MetricsRegistry()
        sampler = DeviceSampler(registry, store)
        sampler.sample(0.0)
        _drive(store, ops=50)
        sampler.sample(1.0)
        _drive(store, ops=50)
        sampler.sample(2.0)
        flushed = registry.series["nvm.bytes_flushed"].values
        assert flushed == sorted(flushed)
        assert flushed[-1] > 0
