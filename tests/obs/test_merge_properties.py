"""Property tests for the merge algebra the parallel runner relies on.

``repro.parallel`` fans experiments out across worker processes and
folds the per-worker results back together; byte-identical output at
any ``--jobs`` requires the fold itself to be well-behaved.  These
tests pin the algebraic properties of :meth:`LatencyHistogram.merge`
and :func:`merge_registries`:

* merging equals recording every sample into one histogram (the bucket
  layout makes it exact, not approximate);
* merge is commutative and associative, so worker partitioning cannot
  change the merged distribution;
* :func:`merge_registries` is insensitive to registry order for every
  instrument type — with the one documented exception that events with
  *equal* virtual timestamps keep merge order (a stable sort), which
  is exactly why the parallel runner always collects results in task
  order rather than completion order.

Samples are dyadic rationals (``k / 2**20`` seconds) so float sums are
exact and the order-insensitivity assertions can demand bit-identical
``total`` fields, not approximate equality.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    merge_registries,
)

# Dyadic samples: exact float addition in any order (mantissas stay
# far below 53 bits), so even the float ``total`` merges exactly.
samples = st.integers(min_value=0, max_value=1 << 20).map(
    lambda k: k / (1 << 20)
)
sample_lists = st.lists(samples, min_size=0, max_size=50)


def _hist(values, name="h"):
    h = LatencyHistogram(name)
    for v in values:
        h.record(v)
    return h


def _state(h):
    """Mergeable state of a histogram, ignoring its name."""
    return (dict(h._buckets), h.count, h.total, h.max_ns)


@settings(max_examples=100, deadline=None)
@given(a=sample_lists, b=sample_lists)
def test_merge_equals_recording_into_one(a, b):
    merged = _hist(a).merge(_hist(b))
    assert _state(merged) == _state(_hist(a + b))
    assert merged.to_dict() == _hist(a + b).to_dict()


@settings(max_examples=100, deadline=None)
@given(a=sample_lists, b=sample_lists)
def test_merge_commutative(a, b):
    ab = _hist(a).merge(_hist(b))
    ba = _hist(b).merge(_hist(a))
    assert _state(ab) == _state(ba)


@settings(max_examples=100, deadline=None)
@given(a=sample_lists, b=sample_lists, c=sample_lists)
def test_merge_associative(a, b, c):
    left = _hist(a).merge(_hist(b)).merge(_hist(c))
    right = _hist(a).merge(_hist(b).merge(_hist(c)))
    assert _state(left) == _state(right)


@settings(max_examples=60, deadline=None)
@given(
    parts=st.lists(sample_lists, min_size=2, max_size=5).flatmap(
        lambda ps: st.permutations(list(range(len(ps)))).map(
            lambda perm: (ps, perm)
        )
    )
)
def test_merge_order_insensitive(parts):
    """Any worker partitioning and collection order merges identically."""
    pieces, perm = parts
    in_order = LatencyHistogram("m")
    for p in pieces:
        in_order.merge(_hist(p))
    permuted = LatencyHistogram("m")
    for i in perm:
        permuted.merge(_hist(pieces[i]))
    assert _state(in_order) == _state(permuted)


# -- merge_registries --------------------------------------------------

def _registry(prefix, spec):
    """Build a shard-style prefixed registry from drawn data.

    ``spec`` is (counter_incs, gauge_value, hist_samples, series_pairs,
    event_times) — one instrument of each type under shared names, the
    shape per-shard registries take in cluster runs.
    """
    counter_incs, gauge_value, hist_samples, series_pairs, event_times = spec
    reg = MetricsRegistry(prefix=prefix)
    for n in counter_incs:
        reg.counter("ops").inc(n)
    reg.gauge("bytes").set(gauge_value)
    for s in hist_samples:
        reg.histogram("op.read").record(s)
    for t, v in series_pairs:
        reg.timeseries("queue").append(t, v)
    for t in event_times:
        reg.events("gc").emit(t, "gc", shard=prefix)
    return reg


reg_specs = st.tuples(
    st.lists(st.integers(min_value=0, max_value=100), max_size=10),
    samples,
    sample_lists,
    st.lists(st.tuples(samples, samples), max_size=10),
    st.just(()),  # event times drawn separately (must be unique)
)


@settings(max_examples=60, deadline=None)
@given(
    specs=st.lists(reg_specs, min_size=2, max_size=4),
    event_times=st.lists(samples, unique=True, max_size=12),
    data=st.data(),
)
def test_merge_registries_order_insensitive(specs, event_times, data):
    """Merging per-shard registries in any order gives one snapshot.

    Event timestamps are unique here; the equal-timestamp tie rule is
    pinned separately below.
    """
    n = len(specs)
    # Partition the globally unique event times across the registries.
    specs = [
        (c, g, h, s, tuple(t for j, t in enumerate(event_times) if j % n == i))
        for i, (c, g, h, s, _) in enumerate(specs)
    ]
    perm = data.draw(st.permutations(list(range(n))))

    def build():
        return [_registry(f"shard{i}/", specs[i]) for i in range(n)]

    regs = build()
    merged = merge_registries(regs).to_dict()
    shuffled = build()
    merged_perm = merge_registries([shuffled[i] for i in perm]).to_dict()
    # Gauges add under merge, and float addition order matters in the
    # last bit — compare them approximately, everything else exactly.
    gauges = merged.pop("gauges")
    gauges_perm = merged_perm.pop("gauges")
    assert gauges.keys() == gauges_perm.keys()
    for k in gauges:
        assert abs(gauges[k] - gauges_perm[k]) <= 1e-12
    assert merged == merged_perm


def test_merge_registries_strips_prefixes():
    regs = [_registry(f"shard{i}/", ([i + 1], 0.0, [0.5], [], ())) for i in range(3)]
    merged = merge_registries(regs)
    assert merged.counter("ops").value == 1 + 2 + 3
    assert merged.histogram("op.read").count == 3


def test_equal_timestamp_events_keep_merge_order():
    """The documented tie rule: events with equal virtual times land in
    merge order (stable sort).  This is why the parallel runner folds
    worker results in *task* order — completion order would reorder
    ties and break byte-identity of the merged event log."""
    a = MetricsRegistry(prefix="a/")
    b = MetricsRegistry(prefix="b/")
    a.events("gc").emit(1.0, "gc", src="a")
    b.events("gc").emit(1.0, "gc", src="b")
    ab = [e["src"] for e in merge_registries([a, b]).events("gc")]
    a2 = MetricsRegistry(prefix="a/")
    b2 = MetricsRegistry(prefix="b/")
    a2.events("gc").emit(1.0, "gc", src="a")
    b2.events("gc").emit(1.0, "gc", src="b")
    ba = [e["src"] for e in merge_registries([b2, a2]).events("gc")]
    assert ab == ["a", "b"]
    assert ba == ["b", "a"]
