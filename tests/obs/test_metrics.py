import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    Counter,
    EventLog,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    TimeSeries,
)


class TestCounterGauge:
    def test_counter(self):
        c = Counter("ops")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge("depth")
        g.set(3.5)
        assert g.value == 3.5


class TestHistogram:
    def test_empty(self):
        h = LatencyHistogram("lat")
        assert h.count == 0
        assert h.percentile(50) == 0.0
        assert h.average() == 0.0

    def test_small_values_exact(self):
        """Sub-16ns values get one bucket each: exact percentiles."""
        h = LatencyHistogram("lat")
        for ns in (3, 3, 3, 9):
            h.record(ns * 1e-9)
        # One bucket per integer ns below 16; midpoint is ns + 0.5.
        assert h.percentile(50) == pytest.approx(3.5e-3, rel=1e-9)  # us

    def test_percentile_accuracy_log_buckets(self):
        """Log bucketing guarantees <= ~6% relative error anywhere."""
        rng = random.Random(5)
        samples = [rng.uniform(1e-6, 5e-3) for _ in range(20_000)]
        h = LatencyHistogram("lat")
        for s in samples:
            h.record(s)
        samples.sort()
        for p in (50, 90, 99, 99.9):
            exact_us = samples[min(len(samples) - 1, int(len(samples) * p / 100))] * 1e6
            approx_us = h.percentile(p)
            assert abs(approx_us - exact_us) / exact_us < 0.08, p

    def test_average_tracks_true_mean(self):
        h = LatencyHistogram("lat")
        values = [1e-6, 2e-6, 3e-6, 4e-6]
        for v in values:
            h.record(v)
        assert h.average() == pytest.approx(2.5, rel=1e-6)  # us

    def test_max_recorded(self):
        h = LatencyHistogram("lat")
        h.record(1e-6)
        h.record(9e-4)
        assert h.to_dict()["max_us"] == pytest.approx(900.0, rel=1e-6)

    def test_to_dict_shape(self):
        h = LatencyHistogram("lat")
        h.record(5e-6)
        d = h.to_dict()
        for key in ("count", "avg_us", "p50_us", "p90_us", "p99_us",
                    "p999_us", "max_us", "buckets_us"):
            assert key in d
        assert d["count"] == 1

    def test_negative_and_zero_clamped(self):
        h = LatencyHistogram("lat")
        h.record(0.0)
        h.record(-1e-9)
        assert h.count == 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(1e-7, 1.0), min_size=1, max_size=300))
    def test_property_percentiles_bounded_by_extremes(self, samples):
        h = LatencyHistogram("lat")
        for s in samples:
            h.record(s)
        lo, hi = min(samples) * 1e6, max(samples) * 1e6
        for p in (0, 50, 99, 100):
            v = h.percentile(p)
            # Bucket midpoints stay within ~7% of the true support.
            assert lo * 0.9 <= v <= hi * 1.07


class TestTimeSeriesEvents:
    def test_timeseries(self):
        ts = TimeSeries("qd")
        ts.append(0.0, 1)
        ts.append(0.5, 3)
        d = ts.to_dict()
        assert d["t"] == [0.0, 0.5]
        assert d["v"] == [1, 3]

    def test_eventlog(self):
        log = EventLog("gc")
        log.emit(1.5, "gc", vs_id=2, moved=10)
        log.emit(2.0, "reclaim", pwb_id=0)
        assert len(log.events) == 2
        gc = log.of_kind("gc")
        assert gc == [{"at": 1.5, "kind": "gc", "vs_id": 2, "moved": 10}]
        assert log.to_list()[1]["kind"] == "reclaim"


class TestRegistry:
    def test_instruments_are_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.timeseries("t") is reg.timeseries("t")
        assert reg.events("e") is reg.events("e")

    def test_phase_helper(self):
        reg = MetricsRegistry()
        reg.phase("put", "index_lookup", 2e-6)
        h = reg.histogram("phase.put.index_lookup")
        assert h.count == 1

    def test_to_dict_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").record(1e-6)
        reg.timeseries("t").append(0.0, 1)
        reg.events("e").emit(0.0, "e", x=1)
        d = reg.to_dict()
        assert d["counters"]["c"] == 1
        assert d["gauges"]["g"] == 1.0
        assert d["histograms"]["h"]["count"] == 1
        assert d["series"]["t"]["v"] == [1]
        assert d["events"]["e"][0]["x"] == 1

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True
        assert NULL_REGISTRY.enabled is False


class TestNullRegistry:
    def test_all_operations_are_noops(self):
        reg = NullRegistry()
        reg.counter("a").inc(5)
        reg.gauge("b").set(1.0)
        reg.histogram("c").record(1e-6)
        reg.timeseries("d").append(0.0, 1)
        reg.events("e").emit(0.0, "e", x=1)
        reg.phase("put", "x", 1e-6)
        d = reg.to_dict()
        assert d["counters"] == {}
        assert d["histograms"] == {}

    def test_instruments_are_shared_singletons(self):
        """The disabled path allocates nothing per call site."""
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("zzz")
        assert reg.histogram("a") is reg.histogram("zzz")

    def test_null_histogram_reports_zero(self):
        h = NULL_REGISTRY.histogram("x")
        h.record(1.0)
        assert h.count == 0
        assert h.percentile(99) == 0.0


class TestHistogramMerge:
    def test_merge_equals_single_recording(self):
        """Bucket-wise merge is exact: merging two histograms matches
        one histogram that recorded every sample."""
        rng = random.Random(11)
        a, b, both = (LatencyHistogram("lat") for _ in range(3))
        for _ in range(500):
            s = rng.expovariate(1e5)
            (a if rng.random() < 0.5 else b).record(s)
            both.record(s)
        a.merge(b)
        assert a.count == both.count
        # total is a float accumulator; summation order differs.
        assert a.total == pytest.approx(both.total, rel=1e-12)
        assert a.max_ns == both.max_ns
        for p in (50, 90, 99, 99.9):
            assert a.percentile(p) == both.percentile(p)

    def test_merge_returns_self_and_empty_is_identity(self):
        a = LatencyHistogram("lat")
        a.record(1e-6)
        before = (a.count, a.total, a.max_ns)
        assert a.merge(LatencyHistogram("other")) is a
        assert (a.count, a.total, a.max_ns) == before

    def test_null_histogram_merge_is_noop(self):
        real = LatencyHistogram("lat")
        real.record(1e-6)
        null = NULL_REGISTRY.histogram("x")
        assert null.merge(real) is null
        assert null.count == 0


class TestRegistryPrefixAndMerge:
    def test_prefix_namespaces_instruments(self):
        reg = MetricsRegistry(prefix="shard3/")
        reg.counter("ops").inc(2)
        reg.histogram("op.all").record(1e-6)
        d = reg.to_dict()
        assert d["counters"] == {"shard3/ops": 2}
        assert list(d["histograms"]) == ["shard3/op.all"]

    def test_prefixed_lookups_are_stable(self):
        reg = MetricsRegistry(prefix="s0/")
        assert reg.counter("a") is reg.counter("a")

    def test_merge_registries_strips_prefixes(self):
        from repro.obs.metrics import merge_registries

        regs = []
        for i in range(3):
            reg = MetricsRegistry(prefix=f"shard{i}/")
            reg.counter("ops").inc(i + 1)
            reg.gauge("depth").set(float(i))
            reg.histogram("lat").record((i + 1) * 1e-6)
            reg.timeseries("qd").append(float(i), i)
            reg.events("gc").emit(float(i), "gc", shard=i)
            regs.append(reg)
        merged = merge_registries(regs)
        assert merged.counter("ops").value == 6
        assert merged.gauge("depth").value == 3.0
        assert merged.histogram("lat").count == 3
        times = merged.timeseries("qd").times
        assert list(times) == sorted(times)
        kinds = [e["at"] for e in merged.events("gc").events]
        assert kinds == sorted(kinds)

    def test_merge_registries_keep_prefix(self):
        from repro.obs.metrics import merge_registries

        reg = MetricsRegistry(prefix="s1/")
        reg.counter("ops").inc(4)
        merged = merge_registries([reg], strip_prefix=False)
        assert merged.counter("s1/ops").value == 4

    def test_merge_into_existing_registry(self):
        from repro.obs.metrics import merge_registries

        into = MetricsRegistry()
        into.counter("ops").inc(1)
        src = MetricsRegistry(prefix="s0/")
        src.counter("ops").inc(2)
        out = merge_registries([src], into=into)
        assert out is into
        assert into.counter("ops").value == 3

    def test_merge_skips_null_registries(self):
        from repro.obs.metrics import merge_registries

        merged = merge_registries([NULL_REGISTRY])
        assert merged.to_dict()["counters"] == {}
