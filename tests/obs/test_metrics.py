import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    Counter,
    EventLog,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    TimeSeries,
)


class TestCounterGauge:
    def test_counter(self):
        c = Counter("ops")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge("depth")
        g.set(3.5)
        assert g.value == 3.5


class TestHistogram:
    def test_empty(self):
        h = LatencyHistogram("lat")
        assert h.count == 0
        assert h.percentile(50) == 0.0
        assert h.average() == 0.0

    def test_small_values_exact(self):
        """Sub-16ns values get one bucket each: exact percentiles."""
        h = LatencyHistogram("lat")
        for ns in (3, 3, 3, 9):
            h.record(ns * 1e-9)
        # One bucket per integer ns below 16; midpoint is ns + 0.5.
        assert h.percentile(50) == pytest.approx(3.5e-3, rel=1e-9)  # us

    def test_percentile_accuracy_log_buckets(self):
        """Log bucketing guarantees <= ~6% relative error anywhere."""
        rng = random.Random(5)
        samples = [rng.uniform(1e-6, 5e-3) for _ in range(20_000)]
        h = LatencyHistogram("lat")
        for s in samples:
            h.record(s)
        samples.sort()
        for p in (50, 90, 99, 99.9):
            exact_us = samples[min(len(samples) - 1, int(len(samples) * p / 100))] * 1e6
            approx_us = h.percentile(p)
            assert abs(approx_us - exact_us) / exact_us < 0.08, p

    def test_average_tracks_true_mean(self):
        h = LatencyHistogram("lat")
        values = [1e-6, 2e-6, 3e-6, 4e-6]
        for v in values:
            h.record(v)
        assert h.average() == pytest.approx(2.5, rel=1e-6)  # us

    def test_max_recorded(self):
        h = LatencyHistogram("lat")
        h.record(1e-6)
        h.record(9e-4)
        assert h.to_dict()["max_us"] == pytest.approx(900.0, rel=1e-6)

    def test_to_dict_shape(self):
        h = LatencyHistogram("lat")
        h.record(5e-6)
        d = h.to_dict()
        for key in ("count", "avg_us", "p50_us", "p90_us", "p99_us",
                    "p999_us", "max_us", "buckets_us"):
            assert key in d
        assert d["count"] == 1

    def test_negative_and_zero_clamped(self):
        h = LatencyHistogram("lat")
        h.record(0.0)
        h.record(-1e-9)
        assert h.count == 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(1e-7, 1.0), min_size=1, max_size=300))
    def test_property_percentiles_bounded_by_extremes(self, samples):
        h = LatencyHistogram("lat")
        for s in samples:
            h.record(s)
        lo, hi = min(samples) * 1e6, max(samples) * 1e6
        for p in (0, 50, 99, 100):
            v = h.percentile(p)
            # Bucket midpoints stay within ~7% of the true support.
            assert lo * 0.9 <= v <= hi * 1.07


class TestTimeSeriesEvents:
    def test_timeseries(self):
        ts = TimeSeries("qd")
        ts.append(0.0, 1)
        ts.append(0.5, 3)
        d = ts.to_dict()
        assert d["t"] == [0.0, 0.5]
        assert d["v"] == [1, 3]

    def test_eventlog(self):
        log = EventLog("gc")
        log.emit(1.5, "gc", vs_id=2, moved=10)
        log.emit(2.0, "reclaim", pwb_id=0)
        assert len(log.events) == 2
        gc = log.of_kind("gc")
        assert gc == [{"at": 1.5, "kind": "gc", "vs_id": 2, "moved": 10}]
        assert log.to_list()[1]["kind"] == "reclaim"


class TestRegistry:
    def test_instruments_are_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.timeseries("t") is reg.timeseries("t")
        assert reg.events("e") is reg.events("e")

    def test_phase_helper(self):
        reg = MetricsRegistry()
        reg.phase("put", "index_lookup", 2e-6)
        h = reg.histogram("phase.put.index_lookup")
        assert h.count == 1

    def test_to_dict_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").record(1e-6)
        reg.timeseries("t").append(0.0, 1)
        reg.events("e").emit(0.0, "e", x=1)
        d = reg.to_dict()
        assert d["counters"]["c"] == 1
        assert d["gauges"]["g"] == 1.0
        assert d["histograms"]["h"]["count"] == 1
        assert d["series"]["t"]["v"] == [1]
        assert d["events"]["e"][0]["x"] == 1

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True
        assert NULL_REGISTRY.enabled is False


class TestNullRegistry:
    def test_all_operations_are_noops(self):
        reg = NullRegistry()
        reg.counter("a").inc(5)
        reg.gauge("b").set(1.0)
        reg.histogram("c").record(1e-6)
        reg.timeseries("d").append(0.0, 1)
        reg.events("e").emit(0.0, "e", x=1)
        reg.phase("put", "x", 1e-6)
        d = reg.to_dict()
        assert d["counters"] == {}
        assert d["histograms"] == {}

    def test_instruments_are_shared_singletons(self):
        """The disabled path allocates nothing per call site."""
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("zzz")
        assert reg.histogram("a") is reg.histogram("zzz")

    def test_null_histogram_reports_zero(self):
        h = NULL_REGISTRY.histogram("x")
        h.record(1.0)
        assert h.count == 0
        assert h.percentile(99) == 0.0
