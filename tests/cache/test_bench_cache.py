"""Full read-cache bench gates (slow_cache: excluded from tier-1).

Tier-1 covers the cache's unit behavior; these run the actual storm
and sweep experiments at near-CI-smoke scale and assert the two bench
gates the `cache-smoke` CI job enforces.
"""

from __future__ import annotations

import pytest

import repro.bench.cache as ca


pytestmark = pytest.mark.slow_cache


@pytest.fixture(scope="module")
def storm():
    return ca.storm_comparison(num_keys=2500, num_ops=5000)


def test_storm_hit_ratio_gate(storm):
    _, on = storm
    ok, detail = ca.check_hit_ratio(on, minimum=0.5)
    assert ok, detail


def test_storm_read_p99_gate(storm):
    off, on = storm
    ok, detail = ca.check_read_p99(off, on)
    assert ok, detail


def test_sweep_hit_ratio_grows_with_capacity():
    grid = ca.cache_sweep(
        capacities=(64 * 1024, 4 * 1024 * 1024),
        thetas=(1.3,),
        num_keys=4000,
        num_ops=4000,
        num_threads=2,
    )
    (row,) = grid.values()
    ratios = [ca.hit_ratio(res) for res in row.values()]
    assert ratios[0] < ratios[1], f"64KB {ratios[0]:.1%} !< 4MB {ratios[1]:.1%}"


def test_cluster_hot_spread_serves_hot_keys_from_replicas():
    primary, spread = ca.cluster_hot_spread(
        num_keys=800, num_ops=4000, clients_per_shard=2
    )
    spread_reads = spread.run.metrics.get("counters", {}).get(
        "cluster.hot_spread_reads", 0
    )
    assert spread_reads > 0, "hot-key detector never routed a spread read"
    assert primary.run.metrics.get("counters", {}).get(
        "cluster.hot_spread_reads", 0
    ) == 0
