"""FrequencySketch unit tests: counting, saturation, aging, determinism."""

from __future__ import annotations

import pytest

from repro.cache.sketch import FrequencySketch


def test_estimate_tracks_adds():
    sketch = FrequencySketch(width=256)
    assert sketch.estimate(b"a") == 0
    for _ in range(5):
        sketch.add(b"a")
    assert sketch.estimate(b"a") == 5
    assert sketch.estimate(b"never-seen") == 0


def test_counters_saturate_at_max_count():
    sketch = FrequencySketch(width=256, max_count=15)
    for _ in range(100):
        sketch.add(b"hot")
    assert sketch.estimate(b"hot") == 15


def test_aging_halves_counts():
    # sample_size = width * factor = 16: the 16th counted add triggers
    # an aging pass that halves every counter.
    sketch = FrequencySketch(width=8, depth=1, sample_factor=2)
    for _ in range(10):
        sketch.add(b"a")
    assert sketch.estimate(b"a") == 10
    for _ in range(6):
        sketch.add(b"b")
    assert sketch.estimate(b"a") == 5
    assert sketch.size == sketch.sample_size // 2


def test_estimate_never_underestimates_single_key():
    sketch = FrequencySketch(width=1024)
    keys = [b"k%d" % i for i in range(50)]
    for key in keys:
        for _ in range(3):
            sketch.add(key)
    # Count-min may overestimate on collisions but never undercount.
    for key in keys:
        assert sketch.estimate(key) >= 3


def test_deterministic_across_instances():
    a, b = FrequencySketch(width=128), FrequencySketch(width=128)
    for key in (b"x", b"y", b"x", b"z", b"x", b"y"):
        a.add(key)
        b.add(key)
    for key in (b"x", b"y", b"z", b"w"):
        assert a.estimate(key) == b.estimate(key)


@pytest.mark.parametrize("width", [0, 1, 3, 100])
def test_width_must_be_power_of_two(width):
    with pytest.raises(ValueError):
        FrequencySketch(width=width)


def test_depth_bounds():
    with pytest.raises(ValueError):
        FrequencySketch(depth=0)
    with pytest.raises(ValueError):
        FrequencySketch(depth=5)
