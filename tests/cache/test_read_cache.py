"""ReadCache unit tests: eviction, admission control, invalidation."""

from __future__ import annotations

import pytest

from repro.cache.read_cache import ReadCache
from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread
from repro.storage.dram import DRAMDevice


@pytest.fixture
def thread():
    return VThread(0, VirtualClock())


def make_cache(capacity=4096, **kwargs) -> ReadCache:
    return ReadCache(DRAMDevice(), capacity, **kwargs)


def warm(cache: ReadCache, key: bytes, idx: int, value: bytes, thread, touches=3):
    """Admit ``key`` and look it up a few times so it earns sketch mass."""
    for _ in range(touches):
        cache.lookup(key, thread)
    assert cache.admit(key, idx, value, thread)


def test_hit_returns_value_and_charges_dram(thread):
    cache = make_cache()
    cache.lookup(b"k", thread)  # miss feeds the sketch
    assert cache.admit(b"k", 7, b"v" * 100, thread)
    before = thread.now
    assert cache.lookup(b"k", thread) == b"v" * 100
    assert thread.now > before  # DRAM read advanced virtual time
    assert cache.hits == 1 and cache.misses == 1


def test_capacity_eviction_lru_order(thread):
    cache = make_cache(capacity=300)
    # Three 100-byte entries fill the cache; "a" is oldest.
    for i, key in enumerate((b"a", b"b", b"c")):
        warm(cache, key, i, b"x" * 100, thread, touches=1)
    assert cache.used == 300
    # Touch "a" so "b" becomes the LRU victim.
    cache.lookup(b"a", thread)
    # A hotter newcomer displaces exactly one victim: the LRU "b".
    for _ in range(5):
        cache.lookup(b"d", thread)
    assert cache.admit(b"d", 3, b"x" * 100, thread)
    assert b"b" not in cache
    assert b"a" in cache and b"c" in cache and b"d" in cache
    assert cache.evictions == 1
    assert cache.used == 300


def test_admission_rejects_one_hit_wonder(thread):
    cache = make_cache(capacity=200)
    for i, key in enumerate((b"res1", b"res2")):
        warm(cache, key, i, b"x" * 100, thread, touches=4)
    # A key seen once (this single miss) ties/loses against residents
    # with frequency 4 — the cache keeps its established entries.
    cache.lookup(b"wonder", thread)
    assert not cache.admit(b"wonder", 9, b"x" * 100, thread)
    assert b"wonder" not in cache
    assert b"res1" in cache and b"res2" in cache
    assert cache.rejections == 1
    assert cache.evictions == 0


def test_admission_tie_keeps_resident(thread):
    cache = make_cache(capacity=100)
    warm(cache, b"res", 1, b"x" * 100, thread, touches=3)
    for _ in range(3):
        cache.lookup(b"cand", thread)
    # Equal frequency: the resident wins.
    assert not cache.admit(b"cand", 2, b"x" * 100, thread)
    assert b"res" in cache


def test_oversized_value_rejected(thread):
    cache = make_cache(capacity=100)
    assert not cache.admit(b"big", 1, b"x" * 101, thread)
    assert cache.rejections == 1
    assert len(cache) == 0


def test_invalidate_by_key_and_idx(thread):
    cache = make_cache()
    warm(cache, b"k", 42, b"v", thread, touches=1)
    assert cache.invalidate_idx(42)
    assert b"k" not in cache
    assert cache.used == 0
    assert cache.invalidations == 1
    # Idempotent: the mapping is gone too.
    assert not cache.invalidate_idx(42)
    assert not cache.invalidate(b"k")


def test_readmission_after_invalidation_remaps_idx(thread):
    cache = make_cache()
    warm(cache, b"k", 1, b"old", thread, touches=2)
    cache.invalidate_idx(1)
    cache.lookup(b"k", thread)
    assert cache.admit(b"k", 8, b"new", thread)
    # The stale idx no longer resolves; the new one does.
    assert not cache.invalidate_idx(1)
    assert cache.lookup(b"k", thread) == b"new"
    assert cache.invalidate_idx(8)


def test_refresh_in_place_adjusts_used_bytes(thread):
    cache = make_cache(capacity=1000)
    warm(cache, b"k", 1, b"x" * 100, thread, touches=1)
    assert cache.admit(b"k", 1, b"y" * 300, thread)
    assert cache.used == 300
    assert cache.lookup(b"k", thread) == b"y" * 300


def test_crash_clears_everything(thread):
    cache = make_cache()
    warm(cache, b"k", 1, b"v", thread, touches=1)
    cache.crash()
    assert len(cache) == 0
    assert cache.used == 0
    assert cache.lookup(b"k", thread) is None


def test_stats_shape():
    cache = make_cache()
    stats = cache.stats()
    assert set(stats) == {
        "rc_hits", "rc_misses", "rc_hit_ratio", "rc_admissions",
        "rc_rejections", "rc_evictions", "rc_invalidations",
        "rc_used_bytes", "rc_entries",
    }
    assert all(isinstance(v, float) for v in stats.values())


def test_capacity_validation():
    with pytest.raises(ValueError):
        make_cache(capacity=0)
