"""Read cache wired into Prism: hits, coherence, crash, stats gating."""

from __future__ import annotations

from repro.core.prism import Prism
from repro.sim.vthread import VThread
from tests.conftest import KB, MB, small_prism_config


def cached_prism(**overrides) -> Prism:
    overrides.setdefault("enable_read_cache", True)
    overrides.setdefault("read_cache_capacity", 1 * MB)
    return Prism(small_prism_config(**overrides))


def test_second_get_is_a_cache_hit():
    store = cached_prism()
    rc = store.read_cache
    store.put(b"k", b"v" * 100)
    assert store.get(b"k") == b"v" * 100  # miss; fills the cache
    assert rc.misses >= 1 and b"k" in rc
    hits_before = rc.hits
    assert store.get(b"k") == b"v" * 100
    assert rc.hits == hits_before + 1


def test_cache_hit_is_faster_than_the_miss():
    store = cached_prism()
    thread = VThread(0, store.clock)
    store.put(b"k", b"v" * KB, thread)
    t0 = thread.now
    store.get(b"k", thread)
    miss_cost = thread.now - t0
    t0 = thread.now
    store.get(b"k", thread)
    hit_cost = thread.now - t0
    assert hit_cost < miss_cost


def test_put_invalidates_cached_value():
    store = cached_prism()
    store.put(b"k", b"old")
    store.get(b"k")
    assert b"k" in store.read_cache
    inval_before = store.read_cache.invalidations
    store.put(b"k", b"new")
    assert b"k" not in store.read_cache
    assert store.read_cache.invalidations == inval_before + 1
    # The next read must see the new value, never the cached old one.
    assert store.get(b"k") == b"new"


def test_delete_invalidates_cached_value():
    store = cached_prism()
    store.put(b"k", b"v")
    store.get(b"k")
    assert b"k" in store.read_cache
    assert store.delete(b"k")
    assert b"k" not in store.read_cache
    assert store.get(b"k") is None


def test_gc_relocation_invalidates_cached_values():
    # Tiny Value Storage so overwrite churn forces GC; set A is
    # overwritten (creating garbage), set B is only ever read and
    # cached.  Any invalidation of a B key must come from the GC
    # relocation publish, since no put ever supersedes B.  A and B are
    # interleaved at load time so every chunk mixes churned A slots
    # with long-lived B slots — chunks stay half-live (a fully dead
    # chunk self-releases without GC) and the collector has to *move*
    # the B records to free space.
    store = cached_prism(
        num_ssds=1,
        ssd_spec=small_prism_config().ssd_spec.with_capacity(256 * KB),
        chunk_size=32 * KB,
        pwb_capacity=32 * KB,
        gc_free_threshold=0.6,
        read_cache_capacity=1 * MB,
    )
    value = b"x" * KB
    a_keys = [b"a%03d" % i for i in range(40)]
    b_keys = [b"b%03d" % i for i in range(40)]
    for a_key, b_key in zip(a_keys, b_keys):
        store.put(a_key, value)
        store.put(b_key, value)
    store.flush()  # drain PWBs so every record lives in Value Storage
    for key in b_keys:
        store.get(key)
    cached_b = [key for key in b_keys if key in store.read_cache]
    assert cached_b, "B set should be cache-resident before the churn"
    # Only GC rounds *after* B is cache-resident count: the load phase
    # itself may already have collected (those moves predate the cache
    # fill and cannot evict anything).
    baseline = len(store.events.of_kind("gc"))
    rounds = 0
    while not any(
        e["moved_records"] for e in store.events.of_kind("gc")[baseline:]
    ):
        rounds += 1
        assert rounds < 50, "GC with live moves never triggered"
        for key in a_keys:
            store.put(key, value)
        store.flush()
    # GC moved live records; every B record it relocated was dropped
    # from the cache at publish time.
    assert any(key not in store.read_cache for key in cached_b)
    # Correctness: reads after relocation serve the right bytes.
    for key in b_keys:
        assert store.get(key) == value


def test_crash_drops_cache_and_recover_serves_correctly():
    store = cached_prism()
    store.put(b"k", b"v" * 100)
    store.get(b"k")
    assert len(store.read_cache) > 0
    store.crash()
    assert len(store.read_cache) == 0
    store.recover()
    assert store.get(b"k") == b"v" * 100


def test_stats_keys_gated_on_cache_presence():
    plain = Prism(small_prism_config())
    cached = cached_prism()
    assert not any(k.startswith("rc_") for k in plain.stats())
    rc_keys = {k for k in cached.stats() if k.startswith("rc_")}
    assert "rc_hits" in rc_keys and "rc_hit_ratio" in rc_keys


def test_cache_off_store_has_no_cache():
    store = Prism(small_prism_config())
    assert store.read_cache is None
