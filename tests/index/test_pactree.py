import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.pactree import PACTree
from repro.sim.vthread import VThread
from repro.storage.nvm import NVMDevice


@pytest.fixture
def tree(nvm):
    return PACTree(nvm, leaf_capacity=8)


class TestBasics:
    def test_empty_lookup(self, tree):
        assert tree.lookup(b"nope") is None
        assert len(tree) == 0

    def test_insert_lookup(self, tree):
        assert tree.insert(b"key", 7)
        assert tree.lookup(b"key") == 7
        assert len(tree) == 1

    def test_overwrite(self, tree):
        tree.insert(b"key", 1)
        assert not tree.insert(b"key", 2)
        assert tree.lookup(b"key") == 2
        assert len(tree) == 1

    def test_delete(self, tree):
        tree.insert(b"key", 1)
        assert tree.delete(b"key")
        assert not tree.delete(b"key")
        assert tree.lookup(b"key") is None

    def test_leaf_capacity_validation(self, nvm):
        with pytest.raises(ValueError):
            PACTree(nvm, leaf_capacity=2)


class TestSplitsAndScan:
    def test_splits_preserve_order(self, tree):
        keys = [f"k{i:04d}".encode() for i in range(300)]
        shuffled = keys[:]
        random.Random(3).shuffle(shuffled)
        for i, k in enumerate(shuffled):
            tree.insert(k, i)
        assert tree.splits > 0
        assert [k for k, _ in tree.items()] == keys

    def test_scan_from_start(self, tree):
        for i in range(100):
            tree.insert(f"k{i:03d}".encode(), i)
        got = tree.scan(b"k050", 10)
        assert [s for _, s in got] == list(range(50, 60))

    def test_scan_past_end(self, tree):
        tree.insert(b"a", 1)
        assert tree.scan(b"z", 5) == []

    def test_scan_zero_count(self, tree):
        tree.insert(b"a", 1)
        assert tree.scan(b"a", 0) == []

    def test_scan_spans_leaves(self, tree):
        for i in range(64):
            tree.insert(f"k{i:02d}".encode(), i)
        got = tree.scan(b"k00", 64)
        assert len(got) == 64

    def test_timed_operations_advance_thread(self, tree, thread):
        tree.insert(b"k", 1, thread)
        assert thread.now > 0
        before = thread.now
        tree.lookup(b"k", thread)
        assert thread.now > before


class TestCrashRecovery:
    def test_committed_inserts_survive(self, tree):
        for i in range(100):
            tree.insert(f"k{i:03d}".encode(), i)
        tree.crash()
        assert tree.recover() == 100
        for i in range(100):
            assert tree.lookup(f"k{i:03d}".encode()) == i

    def test_search_layer_rebuilt(self, tree):
        for i in range(200):
            tree.insert(f"k{i:03d}".encode(), i)
        tree.crash()
        tree.recover()
        assert tree.scan(b"k100", 5) == [
            (f"k{i:03d}".encode(), i) for i in range(100, 105)
        ]

    def test_deletes_survive(self, tree):
        for i in range(50):
            tree.insert(f"k{i:02d}".encode(), i)
        tree.delete(b"k25")
        tree.crash()
        tree.recover()
        assert tree.lookup(b"k25") is None
        assert tree.lookup(b"k24") == 24

    def test_nvm_footprint_grows_with_leaves(self, tree):
        before = tree.nvm_bytes()
        for i in range(200):
            tree.insert(f"k{i:03d}".encode(), i)
        assert tree.nvm_bytes() > before


@settings(max_examples=30, deadline=None)
@given(
    entries=st.dictionaries(
        st.binary(min_size=1, max_size=10), st.integers(min_value=0, max_value=2**40),
        min_size=1, max_size=150,
    )
)
def test_property_matches_dict_and_survives_crash(entries):
    tree = PACTree(NVMDevice(), leaf_capacity=8)
    for k, v in entries.items():
        tree.insert(k, v)
    assert list(tree.items()) == sorted(entries.items())
    tree.crash()
    tree.recover()
    assert list(tree.items()) == sorted(entries.items())
