"""Property-based checks: BTree behaves like a sorted dict."""

from bisect import bisect_left, bisect_right

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.index.btree import BTree

keys = st.binary(min_size=1, max_size=12)


@settings(max_examples=80, deadline=None)
@given(entries=st.dictionaries(keys, st.integers(), max_size=300))
def test_matches_dict_after_bulk_insert(entries):
    tree = BTree(order=8)
    for k, v in entries.items():
        tree.insert(k, v)
    assert len(tree) == len(entries)
    assert list(tree.items()) == sorted(entries.items())
    for k, v in entries.items():
        assert tree.get(k) == v


@settings(max_examples=60, deadline=None)
@given(
    entries=st.dictionaries(keys, st.integers(), min_size=1, max_size=200),
    start=keys,
)
def test_items_from_matches_model(entries, start):
    tree = BTree(order=8)
    for k, v in entries.items():
        tree.insert(k, v)
    expected = [(k, v) for k, v in sorted(entries.items()) if k >= start]
    assert list(tree.items_from(start)) == expected


@settings(max_examples=60, deadline=None)
@given(
    entries=st.dictionaries(keys, st.integers(), min_size=1, max_size=200),
    probe=keys,
)
def test_floor_matches_model(entries, probe):
    tree = BTree(order=8)
    for k, v in entries.items():
        tree.insert(k, v)
    candidates = [k for k in sorted(entries) if k <= probe]
    expected = (candidates[-1], entries[candidates[-1]]) if candidates else None
    assert tree.floor_item(probe) == expected


class BTreeMachine(RuleBasedStateMachine):
    """Interleaved inserts/deletes/overwrites vs a dict model."""

    def __init__(self):
        super().__init__()
        self.tree = BTree(order=8)
        self.model = {}

    @rule(key=keys, value=st.integers())
    def insert(self, key, value):
        was_new = self.tree.insert(key, value)
        assert was_new == (key not in self.model)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=keys)
    def lookup(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @invariant()
    def size_matches(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def iteration_sorted(self):
        assert list(self.tree.items()) == sorted(self.model.items())


TestBTreeStateful = BTreeMachine.TestCase
TestBTreeStateful.settings = settings(max_examples=30, stateful_step_count=40, deadline=None)
