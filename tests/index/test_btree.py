import pytest

from repro.index.btree import BTree


@pytest.fixture
def tree():
    return BTree(order=8)


class TestBasics:
    def test_empty(self, tree):
        assert len(tree) == 0
        assert tree.get(b"missing") is None
        assert b"missing" not in tree

    def test_insert_get(self, tree):
        assert tree.insert(b"k", 1)
        assert tree.get(b"k") == 1
        assert b"k" in tree

    def test_overwrite_returns_false(self, tree):
        tree.insert(b"k", 1)
        assert not tree.insert(b"k", 2)
        assert tree.get(b"k") == 2
        assert len(tree) == 1

    def test_default_value(self, tree):
        assert tree.get(b"x", default="d") == "d"

    def test_delete(self, tree):
        tree.insert(b"k", 1)
        assert tree.delete(b"k")
        assert not tree.delete(b"k")
        assert tree.get(b"k") is None
        assert len(tree) == 0

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BTree(order=2)


class TestSplitsAndOrder:
    def test_many_inserts_stay_sorted(self, tree):
        keys = [f"k{i:04d}".encode() for i in range(500)]
        import random

        shuffled = keys[:]
        random.Random(7).shuffle(shuffled)
        for i, k in enumerate(shuffled):
            tree.insert(k, i)
        assert [k for k, _ in tree.items()] == keys
        assert tree.height > 1

    def test_items_from_mid(self, tree):
        for i in range(100):
            tree.insert(f"k{i:03d}".encode(), i)
        got = [k for k, _ in tree.items_from(b"k050")]
        assert got[0] == b"k050"
        assert len(got) == 50

    def test_items_from_between_keys(self, tree):
        tree.insert(b"a", 1)
        tree.insert(b"c", 2)
        assert [k for k, _ in tree.items_from(b"b")] == [b"c"]

    def test_range_items(self, tree):
        for i in range(50):
            tree.insert(f"k{i:02d}".encode(), i)
        got = list(tree.range_items(b"k10", b"k20"))
        assert len(got) == 10
        assert got[0][0] == b"k10"
        assert got[-1][0] == b"k19"

    def test_keys_iterator(self, tree):
        tree.insert(b"b", 2)
        tree.insert(b"a", 1)
        assert list(tree.keys()) == [b"a", b"b"]


class TestFloor:
    def test_floor_exact(self, tree):
        tree.insert(b"b", 2)
        assert tree.floor_item(b"b") == (b"b", 2)

    def test_floor_between(self, tree):
        tree.insert(b"a", 1)
        tree.insert(b"c", 3)
        assert tree.floor_item(b"b") == (b"a", 1)

    def test_floor_below_minimum(self, tree):
        tree.insert(b"m", 1)
        assert tree.floor_item(b"a") is None

    def test_floor_above_maximum(self, tree):
        for i in range(100):
            tree.insert(f"k{i:03d}".encode(), i)
        assert tree.floor_item(b"zzz") == (b"k099", 99)

    def test_floor_after_deletes(self, tree):
        for i in range(64):
            tree.insert(f"k{i:02d}".encode(), i)
        for i in range(32, 64):
            tree.delete(f"k{i:02d}".encode())
        assert tree.floor_item(b"k99") == (b"k31", 31)
