"""Unit tests for the multiprocess experiment runner primitives.

The contract under test (see ``repro/parallel.py``): results come back
in *task* order regardless of completion order, workers never nest
pools, and ``jobs <= 1`` short-circuits to a plain in-process loop so
the serial path stays trivially identical.
"""

from __future__ import annotations

import os

import pytest

from repro.parallel import get_jobs, parallel_map, set_jobs


# Module-level so spawn workers can unpickle them by qualified name.
def _square(x):
    return x * x


def _pair(a, b):
    return (a, b)


def _worker_jobs_env(x):
    return (x, os.environ.get("REPRO_JOBS"))


def _boom(x):
    raise ValueError(f"boom {x}")


def test_serial_path_preserves_order_and_arity():
    assert parallel_map(_square, [(i,) for i in range(6)], jobs=1) == [
        0, 1, 4, 9, 16, 25,
    ]
    assert parallel_map(_pair, [(1, 2), (3, 4)], jobs=1) == [(1, 2), (3, 4)]


def test_empty_and_single_task_short_circuit():
    assert parallel_map(_square, [], jobs=8) == []
    # One task never pays pool startup, whatever jobs says.
    assert parallel_map(_square, [(7,)], jobs=8) == [49]


def test_parallel_results_in_task_order():
    tasks = [(i,) for i in range(10)]
    assert parallel_map(_square, tasks, jobs=2) == [i * i for i in range(10)]


def test_workers_never_nest_pools():
    # Every worker must see REPRO_JOBS=1, or an inner parallel_map
    # would fork a pool per worker.
    results = parallel_map(_worker_jobs_env, [(i,) for i in range(4)], jobs=2)
    assert [x for x, _ in results] == [0, 1, 2, 3]
    assert all(jobs == "1" for _, jobs in results)


def test_serial_path_runs_in_process():
    # jobs=1 uses no pool: closures (unpicklable) are fine.
    captured = []

    def record(x):
        captured.append(x)
        return x

    assert parallel_map(record, [(1,), (2,)], jobs=1) == [1, 2]
    assert captured == [1, 2]


def test_worker_exception_propagates():
    with pytest.raises(ValueError, match="boom"):
        parallel_map(_boom, [(1,), (2,)], jobs=2)


def test_set_jobs_validates_and_sets_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert get_jobs() == 1
    set_jobs(3)
    assert os.environ["REPRO_JOBS"] == "3"
    assert get_jobs() == 3
    with pytest.raises(ValueError):
        set_jobs(0)
    monkeypatch.delenv("REPRO_JOBS", raising=False)


def test_get_jobs_tolerates_garbage_env(monkeypatch):
    # A malformed REPRO_JOBS degrades to serial, never crashes a run.
    monkeypatch.setenv("REPRO_JOBS", "many")
    assert get_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "-4")
    assert get_jobs() == 1
