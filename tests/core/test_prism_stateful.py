"""Hypothesis stateful machine: Prism vs a dict model, with crashes.

Rules interleave puts, gets, deletes, scans, flushes, and full
crash+recover cycles.  The invariant after every rule: the store's
visible contents equal the model of acknowledged operations.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.prism import Prism
from repro.sim.vthread import VThread
from tests.conftest import small_prism_config

keys = st.integers(min_value=0, max_value=60).map(lambda i: b"s%02d" % i)
values = st.binary(min_size=1, max_size=300)


class PrismMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.store = Prism(small_prism_config(num_threads=1))
        self.thread = VThread(0, self.store.clock)
        self.model = {}
        self.crashed = False

    @precondition(lambda self: not self.crashed)
    @rule(key=keys, value=values)
    def put(self, key, value):
        self.store.put(key, value, self.thread)
        self.model[key] = value

    @precondition(lambda self: not self.crashed)
    @rule(key=keys)
    def get(self, key):
        assert self.store.get(key, self.thread) == self.model.get(key)

    @precondition(lambda self: not self.crashed)
    @rule(key=keys)
    def delete(self, key):
        assert self.store.delete(key, self.thread) == (key in self.model)
        self.model.pop(key, None)

    @precondition(lambda self: not self.crashed)
    @rule(start=keys, count=st.integers(min_value=1, max_value=8))
    def scan(self, start, count):
        expected = sorted(
            (k, v) for k, v in self.model.items() if k >= start
        )[:count]
        assert self.store.scan(start, count, self.thread) == expected

    @precondition(lambda self: not self.crashed)
    @rule()
    def flush(self):
        self.store.flush()

    @precondition(lambda self: not self.crashed)
    @rule()
    def crash(self):
        self.store.crash()
        self.crashed = True

    @precondition(lambda self: self.crashed)
    @rule()
    def recover(self):
        report = self.store.recover()
        assert report.recovered_keys == len(self.model)
        self.crashed = False

    @invariant()
    def contents_match_when_running(self):
        if not self.crashed and hasattr(self, "store"):
            assert len(self.store) == len(self.model)


TestPrismStateful = PrismMachine.TestCase
TestPrismStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
