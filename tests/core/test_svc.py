import pytest

from repro.core.epoch import EpochManager
from repro.core.hsit import HSIT
from repro.core import pointers as ptr
from repro.core.svc import ScanAwareValueCache
from repro.core.value_storage import ValueStorage
from repro.sim.vthread import VThread
from repro.storage.dram import DRAMDevice
from repro.storage.nvm import NVMDevice
from repro.storage.specs import DRAM_SPEC, FLASH_SSD_GEN4_SPEC
from repro.storage.ssd import SSDDevice

MB = 1024**2


@pytest.fixture
def env(nvm):
    hsit = HSIT(nvm, capacity=1024)
    epoch = EpochManager()
    dram = DRAMDevice(DRAM_SPEC.with_capacity(4 * MB))
    svc = ScanAwareValueCache(dram, capacity=4096, hsit=hsit, epoch=epoch)
    ssd = SSDDevice(FLASH_SSD_GEN4_SPEC.with_capacity(16 * MB))
    vs = ValueStorage(0, ssd, chunk_size=16 * 1024)
    bg = VThread(-1, name="bg", background=True)
    return hsit, epoch, svc, vs, bg


def _cache_from_vs(hsit, svc, vs, key, value):
    """Write a record to VS, point HSIT at it, then cache it."""
    idx = hsit.allocate()
    ((c, o, _),), _ = vs.write_records(0.0, [(idx, value)])
    hsit.publish_location(idx, ptr.encode_vs(0, c, o))
    entry_id = svc.admit(idx, key, value)
    return idx, entry_id, (c, o)


class TestAdmissionLookup:
    def test_admit_makes_value_reachable_via_hsit(self, env):
        hsit, _, svc, vs, _ = env
        idx, entry_id, _ = _cache_from_vs(hsit, svc, vs, b"k", b"cached")
        assert hsit.read_svc(idx) == entry_id
        assert svc.lookup(entry_id) == b"cached"
        assert svc.hits == 1

    def test_lookup_unknown_entry(self, env):
        _, _, svc, _, _ = env
        assert svc.lookup(999) is None

    def test_invalidate_hides_entry(self, env):
        hsit, _, svc, vs, _ = env
        idx, entry_id, _ = _cache_from_vs(hsit, svc, vs, b"k", b"v")
        hsit.clear_svc(idx)
        svc.invalidate(entry_id)
        assert svc.lookup(entry_id) is None

    def test_invalidate_frees_capacity_immediately(self, env):
        hsit, _, svc, vs, _ = env
        _, entry_id, _ = _cache_from_vs(hsit, svc, vs, b"k", b"v" * 100)
        assert svc.used == 100
        svc.invalidate(entry_id)
        assert svc.used == 0

    def test_physical_free_waits_for_epochs(self, env):
        hsit, epoch, svc, vs, _ = env
        _, entry_id, _ = _cache_from_vs(hsit, svc, vs, b"k", b"v")
        svc.invalidate(entry_id)
        assert entry_id in svc.entries  # logically freed, memory retained
        epoch.drain()
        assert entry_id not in svc.entries

    def test_page_mode_charges_full_pages(self, nvm):
        hsit = HSIT(nvm, 16)
        svc = ScanAwareValueCache(
            DRAMDevice(DRAM_SPEC), 1 << 20, hsit, EpochManager(), page_mode=True
        )
        idx = hsit.allocate()
        svc.admit(idx, b"k", b"v" * 100)
        assert svc.used == 4096

    def test_capacity_validation(self, nvm):
        with pytest.raises(ValueError):
            ScanAwareValueCache(
                DRAMDevice(DRAM_SPEC), 0, HSIT(nvm, 4), EpochManager()
            )


class Test2Q:
    def test_admission_goes_to_inactive(self, env):
        hsit, _, svc, vs, bg = env
        _, entry_id, _ = _cache_from_vs(hsit, svc, vs, b"k", b"v")
        svc.process_background(bg, [vs])
        assert svc.entries[entry_id].list_name == "inactive"

    def test_second_access_promotes(self, env):
        hsit, _, svc, vs, bg = env
        _, entry_id, _ = _cache_from_vs(hsit, svc, vs, b"k", b"v")
        svc.process_background(bg, [vs])
        svc.lookup(entry_id)
        svc.process_background(bg, [vs])
        assert svc.entries[entry_id].list_name == "active"

    def test_active_list_balanced(self, env):
        hsit, _, svc, vs, bg = env
        ids = []
        for i in range(8):
            _, eid, _ = _cache_from_vs(hsit, svc, vs, b"k%d" % i, b"v" * 400)
            ids.append(eid)
        svc.process_background(bg, [vs])
        for eid in ids:
            svc.lookup(eid)
        svc.process_background(bg, [vs])
        # active share is 50% of 4096 = 2048 -> at most ~5 x 400B active
        assert svc.active_bytes <= svc.capacity * 0.5 + 400

    def test_eviction_from_inactive_when_over_capacity(self, env):
        hsit, _, svc, vs, bg = env
        entries = []
        for i in range(15):
            _, eid, _ = _cache_from_vs(hsit, svc, vs, b"k%02d" % i, b"v" * 400)
            entries.append(eid)
        svc.process_background(bg, [vs])
        assert svc.used <= svc.capacity
        assert svc.evictions > 0
        # oldest admissions evicted first
        assert svc.lookup(entries[0]) is None
        assert svc.lookup(entries[-1]) is not None

    def test_eviction_clears_hsit_word(self, env):
        hsit, _, svc, vs, bg = env
        first_idx, first_eid, _ = _cache_from_vs(hsit, svc, vs, b"k0", b"v" * 2000)
        _cache_from_vs(hsit, svc, vs, b"k1", b"v" * 2000)
        _cache_from_vs(hsit, svc, vs, b"k2", b"v" * 2000)
        svc.process_background(bg, [vs])
        assert hsit.read_svc(first_idx) is None


class TestScanChains:
    def test_link_and_chain_walk(self, env):
        hsit, _, svc, vs, _ = env
        ids = []
        for i in range(5):
            _, eid, _ = _cache_from_vs(hsit, svc, vs, b"k%d" % i, b"v")
            ids.append(eid)
        svc.link_scan_chain(ids)
        chain = svc._chain_of(svc.entries[ids[2]])
        assert [e.entry_id for e in chain] == ids

    def test_linking_disabled_when_not_scan_aware(self, nvm):
        hsit = HSIT(nvm, 64)
        svc = ScanAwareValueCache(
            DRAMDevice(DRAM_SPEC), 1 << 20, hsit, EpochManager(), scan_aware=False
        )
        ids = []
        for i in range(3):
            idx = hsit.allocate()
            ids.append(svc.admit(idx, b"k%d" % i, b"v"))
        svc.link_scan_chain(ids)
        assert svc.entries[ids[0]].scan_next is None

    def test_chain_writeback_rewrites_contiguously(self, env):
        hsit, _, svc, vs, bg = env
        ids = []
        idxs = []
        # interleave writes so VS placement is scattered by key
        for i in (3, 0, 4, 1, 2):
            idx, eid, _ = _cache_from_vs(hsit, svc, vs, b"k%d" % i, b"val%d" % i)
            ids.append((b"k%d" % i, eid))
            idxs.append((b"k%d" % i, idx))
        ids.sort()
        idxs.sort()
        svc.link_scan_chain([eid for _, eid in ids])
        svc.process_background(bg, [vs])
        # force eviction of a chain member
        svc._writeback_chain(bg, svc.entries[ids[0][1]], [vs])
        assert svc.scan_writebacks == 1
        # all members now contiguous in one chunk, ascending offsets
        locs = [hsit.read_location(idx) for _, idx in idxs]
        assert len({(l.vs_id, l.chunk_id) for l in locs}) == 1
        offsets = [l.vs_offset for l in locs]
        assert offsets == sorted(offsets)
        # and the data survived the move
        for (key, idx), loc in zip(idxs, locs):
            back, value = vs.read_record_raw(loc.chunk_id, loc.vs_offset)
            assert back == idx
            assert value == b"val" + key[-1:]

    def test_contiguous_chain_not_rewritten(self, env):
        hsit, _, svc, vs, bg = env
        idx_list = [hsit.allocate() for _ in range(4)]
        records = [(idx, b"v%d" % i) for i, idx in enumerate(idx_list)]
        placements, _ = vs.write_records(0.0, records)
        ids = []
        for (idx, val), (c, o, _s) in zip(records, placements):
            hsit.publish_location(idx, ptr.encode_vs(0, c, o))
            ids.append(svc.admit(idx, val, val))
        svc.link_scan_chain(ids)
        writes_before = vs.chunk_writes
        svc._writeback_chain(bg, svc.entries[ids[0]], [vs])
        assert vs.chunk_writes == writes_before  # already contiguous
        assert svc.scan_writebacks == 0

    def test_chain_members_stay_cached_after_writeback(self, env):
        hsit, _, svc, vs, bg = env
        ids = []
        for i in (2, 0, 1):
            _, eid, _ = _cache_from_vs(hsit, svc, vs, b"k%d" % i, b"w%d" % i)
            ids.append(eid)
        svc.process_background(bg, [vs])
        svc.link_scan_chain(sorted(ids))
        victim = svc.entries[ids[0]]
        svc._writeback_chain(bg, victim, [vs])
        live = [eid for eid in ids if svc.lookup(eid) is not None]
        assert len(live) == 2  # only the victim left the cache


def test_crash_empties_cache(env):
    hsit, _, svc, vs, _ = env
    _cache_from_vs(hsit, svc, vs, b"k", b"v")
    svc.crash()
    assert len(svc) == 0
    assert svc.used == 0
