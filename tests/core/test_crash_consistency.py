"""Cross-media crash consistency (§5.4–5.5).

These tests exercise the exact crash windows the paper's protocol is
designed for, using the simulated NVM's lost-unflushed-lines
semantics, and verify durable linearizability: every acknowledged
write survives; un-acknowledged writes roll back to the previous
durable value.
"""

import random

import pytest

from repro.core.prism import Prism
from repro.core import pointers as ptr
from repro.sim.vthread import VThread
from tests.conftest import small_prism_config


@pytest.fixture
def store():
    return Prism(small_prism_config())


@pytest.fixture
def t(store):
    return VThread(0, store.clock)


class TestBasicDurability:
    def test_acknowledged_puts_survive(self, store, t):
        for i in range(200):
            store.put(b"c%03d" % i, b"v%03d" % i, t)
        store.crash()
        report = store.recover()
        assert report.recovered_keys == 200
        for i in range(200):
            assert store.get(b"c%03d" % i, t) == b"v%03d" % i

    def test_latest_version_survives(self, store, t):
        for version in range(10):
            store.put(b"k", b"version-%d" % version, t)
        store.crash()
        store.recover()
        assert store.get(b"k", t) == b"version-9"

    def test_deletes_survive(self, store, t):
        store.put(b"keep", b"v", t)
        store.put(b"drop", b"v", t)
        store.delete(b"drop", t)
        store.crash()
        store.recover()
        assert store.get(b"keep", t) == b"v"
        assert store.get(b"drop", t) is None

    def test_values_on_ssd_survive(self, store, t):
        for i in range(100):
            store.put(b"s%03d" % i, b"v%03d" % i, t)
        store.flush()  # move to Value Storage
        store.crash()
        store.recover()
        for i in range(100):
            assert store.get(b"s%03d" % i, t) == b"v%03d" % i

    def test_operations_blocked_until_recovery(self, store, t):
        store.put(b"k", b"v", t)
        store.crash()
        with pytest.raises(RuntimeError):
            store.get(b"k", t)
        store.recover()
        assert store.get(b"k", t) == b"v"

    def test_store_usable_after_recovery(self, store, t):
        store.put(b"a", b"1", t)
        store.crash()
        store.recover()
        store.put(b"b", b"2", t)
        assert store.scan(b"a", 2, t) == [(b"a", b"1"), (b"b", b"2")]

    def test_double_crash_recover(self, store, t):
        store.put(b"k", b"v1", t)
        store.crash()
        store.recover()
        store.put(b"k", b"v2", t)
        store.crash()
        store.recover()
        assert store.get(b"k", t) == b"v2"


class TestCrashWindows:
    """Inject crashes into the middle of the update protocol."""

    def test_crash_before_forward_pointer_flush(self, store, t):
        """Value persisted, HSIT store not flushed: old value wins
        (Figure 6's 'written but not reachable' case)."""
        store.put(b"k", b"old", t)
        store.flush()
        idx = store.index.lookup(b"k")
        # Manually run the first half of an update: append the new
        # value, then store (but do NOT flush) the forward pointer.
        pwb = store.pwbs[0]
        offset = pwb.append(idx, b"new", t)
        addr = store.hsit._addr(idx)
        word = ptr.set_dirty(ptr.encode_pwb(0, offset))
        store.nvm.store(None, addr, word.to_bytes(8, "little"))
        store.crash()
        store.recover()
        assert store.get(b"k", t) == b"old"

    def test_crash_after_forward_pointer_flush(self, store, t):
        """Pointer flushed with dirty bit still set: new value wins,
        recovery normalizes the dirty bit."""
        store.put(b"k", b"old", t)
        store.flush()
        idx = store.index.lookup(b"k")
        pwb = store.pwbs[0]
        offset = pwb.append(idx, b"new", t)
        addr = store.hsit._addr(idx)
        word = ptr.set_dirty(ptr.encode_pwb(0, offset))
        store.nvm.persist(None, addr, word.to_bytes(8, "little"))
        store.crash()
        store.recover()
        assert store.get(b"k", t) == b"new"

    def test_crash_between_hsit_alloc_and_index_insert_leaks_nothing(
        self, store, t
    ):
        """A crashed insert leaves an unreachable HSIT entry; recovery
        returns it to the free list."""
        store.put(b"exists", b"v", t)
        idx = store.hsit.allocate(t)  # insert began...
        pwb = store.pwbs[0]
        offset = pwb.append(idx, b"orphan", t)
        store.hsit.publish_location(idx, ptr.encode_pwb(0, offset), t)
        # ...crash before the index insert
        store.crash()
        report = store.recover()
        assert report.leaked_entries_reclaimed >= 1
        assert store.get(b"exists", t) == b"v"
        # the reclaimed entry is reusable
        store.put(b"fresh", b"v2", t)
        assert store.get(b"fresh", t) == b"v2"

    def test_svc_pointers_nullified_on_recovery(self, store, t):
        store.put(b"k", b"v", t)
        store.flush()
        store.get(b"k", t)  # cached in SVC (DRAM)
        idx = store.index.lookup(b"k")
        assert store.hsit.read_svc(idx) is not None
        store.crash()
        store.recover()
        assert store.hsit.read_svc(idx) is None
        assert store.get(b"k", t) == b"v"

    def test_validity_bitmaps_rebuilt(self, store, t):
        for i in range(60):
            store.put(b"b%02d" % i, b"x" * 200, t)
        store.flush()
        for i in range(0, 60, 2):
            store.put(b"b%02d" % i, b"y" * 200, t)  # invalidate half on SSD
        store.crash()
        report = store.recover()
        assert report.vs_records_validated > 0
        for i in range(60):
            expected = b"y" * 200 if i % 2 == 0 else b"x" * 200
            assert store.get(b"b%02d" % i, t) == expected


class TestRecoveryReport:
    def test_pwb_values_flushed_on_recovery(self, store, t):
        for i in range(20):
            store.put(b"p%02d" % i, b"v", t)
        store.crash()
        report = store.recover()
        assert report.pwb_values_flushed == 20
        # PWBs restart empty
        assert all(pwb.used == 0 for pwb in store.pwbs)

    def test_recovery_duration_positive_and_scales(self, store, t):
        for i in range(50):
            store.put(b"r%03d" % i, b"v" * 100, t)
        store.crash()
        slow = store.recover(recovery_threads=1)
        assert slow.duration > 0

    def test_recovery_thread_validation(self, store):
        store.crash()
        with pytest.raises(ValueError):
            store.recover(recovery_threads=0)

    def test_empty_store_recovery(self, store):
        store.crash()
        report = store.recover()
        assert report.recovered_keys == 0


class TestRandomizedCrashRecovery:
    @pytest.mark.parametrize("seed", [7, 21, 99])
    def test_acknowledged_state_always_recovered(self, seed):
        """Property: run random ops, crash at a random point, recover —
        the store must equal the model of acknowledged operations."""
        store = Prism(small_prism_config())
        t = VThread(0, store.clock)
        rng = random.Random(seed)
        model = {}
        for step in range(rng.randrange(200, 800)):
            key = b"x%03d" % rng.randrange(80)
            if rng.random() < 0.7:
                value = bytes([rng.randrange(256)]) * rng.randrange(1, 400)
                store.put(key, value, t)
                model[key] = value
            else:
                store.delete(key, t)
                model.pop(key, None)
        store.crash()
        report = store.recover()
        assert report.recovered_keys == len(model)
        for key, value in model.items():
            assert store.get(key, t) == value, key
        scan = store.scan(b"x", 1000, t)
        assert scan == sorted(model.items())


class TestCrashDuringRecovery:
    """Recovery itself can lose power; a second pass must succeed and
    produce the same consistent state (idempotence)."""

    @pytest.mark.parametrize(
        "label",
        ["recover.index_done", "recover.walked", "recover.flushed", "recover.done"],
    )
    def test_interrupted_recovery_is_idempotent(self, label):
        from repro.core.checker import audit
        from repro.storage.crash import SimulatedCrash

        store = Prism(small_prism_config())
        t = VThread(0, store.clock)
        model = {}
        for i in range(120):
            key = b"i%03d" % (i % 40)
            value = b"v%03d" % i
            store.put(key, value, t)
            model[key] = value
        store.crash()
        store.crash_point.arm(label)
        with pytest.raises(SimulatedCrash):
            store.recover()
        report = store.recover()  # second, uninterrupted pass
        assert report.recovered_keys == len(model)
        assert audit(store).ok
        for key, value in model.items():
            assert store.get(key, t) == value
