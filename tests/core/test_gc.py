"""Garbage collection in Value Storage (§5.2, Figure 17)."""

import pytest

from repro.core.prism import Prism
from repro.sim.vthread import VThread
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from tests.conftest import small_prism_config

KB = 1024
MB = 1024**2


@pytest.fixture
def tight_store():
    """Value Storage barely larger than the working set, so GC must run."""
    return Prism(
        small_prism_config(
            num_ssds=1,
            ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(512 * KB),
            chunk_size=16 * KB,
            pwb_capacity=32 * KB,
            gc_free_threshold=0.4,
            svc_capacity=32 * KB,
        )
    )


def _churn(store, t, rounds=60, keys=300, seed=5):
    """Scattered updates: each reclamation mixes hot and cold keys, so
    old chunks stay partially live and the log fragments — the
    condition GC exists for."""
    import random

    rng = random.Random(seed)
    expected = {}
    for round_no in range(rounds):
        for _ in range(60):
            i = rng.randrange(keys)
            value = bytes([round_no % 256, i % 256]) * 200
            store.put(b"g%03d" % i, value, t)
            expected[b"g%03d" % i] = value
    return expected


def test_gc_triggers_under_space_pressure(tight_store):
    t = VThread(0, tight_store.clock)
    _churn(tight_store, t)
    assert sum(vs.gc_runs for vs in tight_store.storages) > 0
    assert tight_store.gc_events


def test_gc_preserves_all_live_values(tight_store):
    t = VThread(0, tight_store.clock)
    expected = _churn(tight_store, t)
    assert sum(vs.gc_runs for vs in tight_store.storages) > 0
    for key, value in expected.items():
        assert tight_store.get(key, t) == value


def test_gc_reclaims_free_chunks(tight_store):
    t = VThread(0, tight_store.clock)
    _churn(tight_store, t)
    vs = tight_store.storages[0]
    # GC kept the store from running out of chunks entirely
    assert vs.free_chunks > 0
    assert vs.gc_moved_bytes > 0


def test_gc_survives_crash_afterwards(tight_store):
    t = VThread(0, tight_store.clock)
    expected = _churn(tight_store, t, rounds=45)
    assert sum(vs.gc_runs for vs in tight_store.storages) > 0
    tight_store.crash()
    tight_store.recover()
    for key, value in expected.items():
        assert tight_store.get(key, t) == value


def test_gc_runs_off_critical_path(tight_store):
    """GC charges the background thread, not the writer (beyond device
    contention): foreground latencies stay bounded."""
    import random

    t = VThread(0, tight_store.clock)
    rng = random.Random(5)
    worst = 0.0
    for round_no in range(60):
        for _ in range(60):
            i = rng.randrange(300)
            before = t.now
            tight_store.put(b"g%03d" % i, bytes([round_no % 256]) * 200, t)
            worst = max(worst, t.now - before)
    assert sum(vs.gc_runs for vs in tight_store.storages) > 0
    # An in-path GC would cost milliseconds; bounded stalls only.
    assert worst < 2e-3
