import pytest

from repro.core.config import PrismConfig


def test_defaults_valid():
    PrismConfig()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_threads": 0},
        {"num_ssds": 0},
        {"pwb_watermark": 0.0},
        {"pwb_watermark": 1.0},
        {"gc_free_threshold": 1.0},
        {"gc_free_threshold": -0.1},
        {"read_batching": "magic"},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        PrismConfig(**kwargs)


def test_hardware_cost_tracks_capacity():
    small = PrismConfig(svc_capacity=1 << 20).hardware_cost()
    large = PrismConfig(svc_capacity=1 << 30).hardware_cost()
    assert large > small


def test_read_batching_modes():
    for mode in ("tc", "ta", "sync"):
        assert PrismConfig(read_batching=mode).read_batching == mode
