import pytest

from repro.core.tcq import (
    MODE_SYNC,
    MODE_THREAD_COMBINING,
    MODE_TIMEOUT_ASYNC,
    ThreadCombiner,
)
from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread
from repro.storage.iouring import IORequest, IOUring
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from repro.storage.ssd import SSDDevice

MB = 1024**2


@pytest.fixture
def ring():
    return IOUring(SSDDevice(FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB)), 64)


def _read(offset=0, size=1024):
    return IORequest("read", offset, size)


class TestModes:
    def test_invalid_mode(self, ring):
        with pytest.raises(ValueError):
            ThreadCombiner(ring, mode="bogus")

    def test_sync_mode_waits_whole_batch(self, ring):
        combiner = ThreadCombiner(ring, mode=MODE_SYNC)
        t = VThread(0)
        reqs = [_read(i * 4096) for i in range(4)]
        done = combiner.read(t, reqs)
        assert t.now == done == max(r.completion for r in reqs)

    def test_empty_request_list(self, ring):
        combiner = ThreadCombiner(ring)
        t = VThread(0)
        assert combiner.read(t, []) == t.now


class TestCombining:
    def test_lone_reader_pays_window_plus_device(self, ring):
        combiner = ThreadCombiner(ring, combine_window=1.5e-6)
        t = VThread(0)
        combiner.read(t, [_read()])
        # window + syscall + ~50us device latency
        assert 50e-6 < t.now < 60e-6

    def test_concurrent_readers_share_batch(self, ring):
        clock = VirtualClock()
        combiner = ThreadCombiner(ring, combine_window=2e-6)
        leader = VThread(0, clock)
        follower = VThread(1, clock)
        follower.now = 0.5e-6  # arrives within the window
        combiner.read(leader, [_read(0)])
        combiner.read(follower, [_read(4096)])
        assert combiner.batches == 1
        assert combiner.average_batch() == pytest.approx(2.0)

    def test_late_arrival_starts_new_batch(self, ring):
        clock = VirtualClock()
        combiner = ThreadCombiner(ring, combine_window=1e-6)
        a, b = VThread(0, clock), VThread(1, clock)
        b.now = 100e-6
        combiner.read(a, [_read(0)])
        combiner.read(b, [_read(4096)])
        assert combiner.batches == 2

    def test_coalescing_limit_respected(self, ring):
        combiner = ThreadCombiner(ring, combine_window=1e-3)
        threads = [VThread(i) for i in range(3)]
        # each brings 30 requests; QD 64 -> third thread overflows
        for t in threads:
            combiner.read(t, [_read(i * 4096) for i in range(30)])
        assert combiner.batches == 2

    def test_follower_cost_lower_than_leader(self, ring):
        clock = VirtualClock()
        combiner = ThreadCombiner(ring, combine_window=5e-6)
        leader, follower = VThread(0, clock), VThread(1, clock)
        follower.now = 1e-6
        combiner.read(leader, [_read(0)])
        combiner.read(follower, [_read(4096)])
        # follower arrived later but finishes about the same time
        assert abs(leader.now - follower.now) < 5e-6

    def test_read_one_returns_payload(self, ring):
        ring.device.write_raw(0, b"payload!")
        combiner = ThreadCombiner(ring)
        t = VThread(0)
        data = combiner.read_one(t, _read(0, 8))
        assert data == b"payload!"


class TestTimeoutStrawman:
    def test_ta_latency_includes_timeout(self, ring):
        combiner = ThreadCombiner(ring, mode=MODE_TIMEOUT_ASYNC, timeout_window=100e-6)
        t = VThread(0)
        combiner.read(t, [_read()])
        assert t.now > 100e-6

    def test_tc_beats_ta_for_lone_reader(self, ring):
        tc = ThreadCombiner(ring, mode=MODE_THREAD_COMBINING)
        ta = ThreadCombiner(
            IOUring(SSDDevice(FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB)), 64),
            mode=MODE_TIMEOUT_ASYNC,
        )
        t1, t2 = VThread(0), VThread(1)
        tc.read(t1, [_read()])
        ta.read(t2, [_read()])
        assert t1.now < t2.now


class TestOversizedLeader:
    def test_leader_splits_at_coalescing_limit(self, ring):
        """A leader with more requests than QD submits multiple batches,
        none above the limit."""
        combiner = ThreadCombiner(ring, combine_window=1e-3)
        t = VThread(0)
        reqs = [_read(i * 4096) for i in range(150)]  # QD 64 -> 64+64+22
        combiner.read(t, reqs)
        assert combiner.batches == 3
        assert combiner.combined_requests == 150
        assert combiner.average_batch() <= combiner.coalescing_limit
        assert all(r.completion is not None for r in reqs)

    def test_exact_multiple_leaves_no_open_window(self, ring):
        """Full batches close immediately: a follower arriving right
        after a QD-multiple submission starts its own batch."""
        clock = VirtualClock()
        combiner = ThreadCombiner(ring, combine_window=1e-3)
        a, b = VThread(0, clock), VThread(1, clock)
        combiner.read(a, [_read(i * 4096) for i in range(128)])  # 2 full batches
        b.now = 1e-7  # well inside what the window would have been
        combiner.read(b, [_read(4096)])
        assert combiner.batches == 3  # b led its own batch

    def test_average_batch_never_exceeds_limit(self, ring):
        """Acceptance criterion: no request mix can push the average
        (or any) batch above the coalescing limit."""
        import random

        rng = random.Random(42)
        combiner = ThreadCombiner(ring, combine_window=2e-6)
        clock = VirtualClock()
        now = 0.0
        for i in range(60):
            t = VThread(i, clock)
            now += rng.choice([0.0, 0.3e-6, 5e-6])
            t.now = now
            combiner.read(t, [_read(j * 4096) for j in range(rng.randint(1, 100))])
        assert combiner.average_batch() <= combiner.coalescing_limit

    def test_stale_batch_count_does_not_block_followers(self, ring):
        """After a batch's window expires, its count must not make the
        next window reject followers that would fit."""
        clock = VirtualClock()
        combiner = ThreadCombiner(ring, combine_window=2e-6)
        a = VThread(0, clock)
        combiner.read(a, [_read(i * 4096) for i in range(60)])  # partial batch of 60
        # Long after the window closed, a new leader opens a window...
        b = VThread(1, clock)
        b.now = 1.0
        combiner.read(b, [_read(0)])
        # ...and a follower with 10 requests must be admitted (1 + 10 <= 64);
        # with the stale count of 60 leaking it would have been rejected.
        c = VThread(2, clock)
        c.now = 1.0 + 0.5e-6
        combiner.read(c, [_read(i * 4096) for i in range(10)])
        assert combiner.batches == 2  # 60-req leader batch, then b+c shared
        assert combiner.combined_requests == 71


def test_average_batch_empty(ring):
    assert ThreadCombiner(ring).average_batch() == 0.0
