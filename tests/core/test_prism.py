import random

import pytest

from repro.core.config import PrismConfig
from repro.core.prism import Prism
from repro.sim.vthread import VThread
from tests.conftest import small_prism_config


@pytest.fixture
def t(prism):
    return VThread(0, prism.clock)


class TestBasicOperations:
    def test_get_missing(self, prism, t):
        assert prism.get(b"nope", t) is None

    def test_put_get(self, prism, t):
        prism.put(b"k", b"v", t)
        assert prism.get(b"k", t) == b"v"
        assert len(prism) == 1

    def test_update_returns_latest(self, prism, t):
        prism.put(b"k", b"v1", t)
        prism.put(b"k", b"v2", t)
        assert prism.get(b"k", t) == b"v2"
        assert len(prism) == 1

    def test_delete(self, prism, t):
        prism.put(b"k", b"v", t)
        assert prism.delete(b"k", t)
        assert not prism.delete(b"k", t)
        assert prism.get(b"k", t) is None
        assert len(prism) == 0

    def test_reinsert_after_delete(self, prism, t):
        prism.put(b"k", b"v1", t)
        prism.delete(b"k", t)
        prism.put(b"k", b"v2", t)
        assert prism.get(b"k", t) == b"v2"

    def test_key_type_validation(self, prism, t):
        with pytest.raises(TypeError):
            prism.put("str", b"v", t)
        with pytest.raises(TypeError):
            prism.put(b"", b"v", t)
        with pytest.raises(TypeError):
            prism.put(b"k", b"", t)
        with pytest.raises(TypeError):
            prism.get("str", t)

    def test_default_thread(self, prism):
        prism.put(b"k", b"v")
        assert prism.get(b"k") == b"v"

    def test_value_sizes(self, prism, t):
        for size in (1, 100, 4096, 10_000):
            prism.put(b"k%d" % size, b"x" * size, t)
        for size in (1, 100, 4096, 10_000):
            assert prism.get(b"k%d" % size, t) == b"x" * size


class TestScan:
    def test_scan_ordered(self, prism, t):
        for i in (5, 1, 3, 2, 4):
            prism.put(b"k%d" % i, b"v%d" % i, t)
        result = prism.scan(b"k2", 3, t)
        assert result == [(b"k2", b"v2"), (b"k3", b"v3"), (b"k4", b"v4")]

    def test_scan_sees_latest_updates(self, prism, t):
        prism.put(b"a", b"old", t)
        prism.put(b"a", b"new", t)
        assert prism.scan(b"a", 1, t) == [(b"a", b"new")]

    def test_scan_mixed_media(self, prism, t):
        """Values in PWB, SVC and Value Storage in one range."""
        for i in range(60):
            prism.put(b"s%03d" % i, b"v%03d" % i, t)
        prism.flush()  # everything to Value Storage
        prism.scan(b"s000", 20, t)  # caches some in SVC
        for i in range(0, 60, 7):
            prism.put(b"s%03d" % i, b"fresh%03d" % i, t)  # back into PWB
        result = prism.scan(b"s000", 60, t)
        assert len(result) == 60
        for key, value in result:
            i = int(key[1:])
            expected = b"fresh%03d" % i if i % 7 == 0 else b"v%03d" % i
            assert value == expected

    def test_scan_empty_store(self, prism, t):
        assert prism.scan(b"a", 10, t) == []

    def test_scan_excludes_deleted(self, prism, t):
        for i in range(5):
            prism.put(b"d%d" % i, b"v", t)
        prism.delete(b"d2", t)
        keys = [k for k, _ in prism.scan(b"d0", 5, t)]
        assert b"d2" not in keys
        assert len(keys) == 4


class TestDurabilityPipeline:
    def test_values_move_pwb_to_vs_on_flush(self, prism, t):
        prism.put(b"k", b"v", t)
        loc_before = prism.hsit.read_location(prism.index.lookup(b"k"))
        assert loc_before.in_pwb
        prism.flush()
        loc_after = prism.hsit.read_location(prism.index.lookup(b"k"))
        assert loc_after.in_vs
        assert prism.get(b"k", t) == b"v"

    def test_reclamation_triggers_at_watermark(self, prism, t):
        pwb = prism.pwbs[0]
        watermark_bytes = int(pwb.capacity * prism.config.pwb_watermark)
        written = 0
        i = 0
        while written <= watermark_bytes + 4096:
            prism.put(b"w%05d" % i, b"x" * 512, t)
            written += 512 + 16
            i += 1
        assert prism.reclaims >= 1

    def test_reclamation_deduplicates_versions(self, prism, t):
        """Only the latest version of a hot key reaches the SSD."""
        for _ in range(40):
            prism.put(b"hot", b"h" * 512, t)
        prism.flush()
        # 40 x 512B written to PWB, but SSD got one live version (plus
        # chunk metadata): WAF well below 1 for this pattern.
        assert prism.ssd_bytes_written() < 40 * 512 / 2

    def test_pwb_full_falls_back_to_blocking_reclaim(self):
        config = small_prism_config(pwb_capacity=8192, num_threads=1)
        store = Prism(config)
        thread = VThread(0, store.clock)
        for i in range(100):
            store.put(b"b%03d" % i, b"y" * 700, thread)
        for i in range(100):
            assert store.get(b"b%03d" % i, thread) == b"y" * 700

    def test_flush_then_read_from_vs(self, prism, t):
        for i in range(50):
            prism.put(b"f%02d" % i, b"v%02d" % i, t)
        prism.flush()
        for i in range(50):
            assert prism.get(b"f%02d" % i, t) == b"v%02d" % i


class TestSVCIntegration:
    def test_vs_read_populates_cache(self, prism, t):
        prism.put(b"k", b"v", t)
        prism.flush()
        idx = prism.index.lookup(b"k")
        assert prism.hsit.read_svc(idx) is None
        prism.get(b"k", t)
        assert prism.hsit.read_svc(idx) is not None

    def test_second_read_is_cache_hit(self, prism, t):
        prism.put(b"k", b"v", t)
        prism.flush()
        prism.get(b"k", t)
        hits_before = prism.svc.hits
        prism.get(b"k", t)
        assert prism.svc.hits == hits_before + 1

    def test_update_invalidates_cached_copy(self, prism, t):
        prism.put(b"k", b"old", t)
        prism.flush()
        prism.get(b"k", t)  # cache it
        prism.put(b"k", b"new", t)
        assert prism.get(b"k", t) == b"new"

    def test_delete_invalidates_cached_copy(self, prism, t):
        prism.put(b"k", b"v", t)
        prism.flush()
        prism.get(b"k", t)
        prism.delete(b"k", t)
        assert prism.get(b"k", t) is None

    def test_svc_disabled(self):
        store = Prism(small_prism_config(enable_svc=False))
        thread = VThread(0, store.clock)
        store.put(b"k", b"v", thread)
        store.flush()
        assert store.get(b"k", thread) == b"v"
        assert store.svc.admissions == 0


class TestAblationModes:
    def test_no_pwb_mode_functional(self):
        store = Prism(small_prism_config(enable_pwb=False))
        thread = VThread(0, store.clock)
        for i in range(30):
            store.put(b"n%02d" % i, b"v%02d" % i, thread)
        for i in range(30):
            assert store.get(b"n%02d" % i, thread) == b"v%02d" % i
        assert store.reclaims == 0

    def test_no_pwb_writes_pay_ssd_latency(self):
        fast = Prism(small_prism_config())
        slow = Prism(small_prism_config(enable_pwb=False))
        t1, t2 = VThread(0, fast.clock), VThread(0, slow.clock)
        fast.put(b"k", b"v" * 100, t1)
        slow.put(b"k", b"v" * 100, t2)
        assert t1.now < t2.now

    def test_sync_read_mode(self):
        store = Prism(small_prism_config(read_batching="sync"))
        thread = VThread(0, store.clock)
        store.put(b"k", b"v", thread)
        store.flush()
        assert store.get(b"k", thread) == b"v"


class TestStats:
    def test_counters(self, prism, t):
        prism.put(b"k", b"v", t)
        prism.get(b"k", t)
        prism.scan(b"k", 1, t)
        prism.delete(b"k", t)
        stats = prism.stats()
        assert stats["puts"] == 1
        assert stats["gets"] == 1
        assert stats["scans"] == 1
        assert stats["deletes"] == 1

    def test_waf_zero_when_nothing_written(self, prism):
        assert prism.waf() == 0.0

    def test_nvm_usage_grows(self, prism, t):
        before = prism.nvm_bytes_used()
        for i in range(100):
            prism.put(b"g%03d" % i, b"v", t)
        assert prism.nvm_bytes_used() >= before

    def test_hardware_cost_positive(self, prism):
        assert prism.config.hardware_cost() > 0


class TestRandomizedModelCheck:
    def test_against_dict_model(self, prism, t):
        rng = random.Random(1234)
        model = {}
        for step in range(2500):
            key = b"m%04d" % rng.randrange(300)
            op = rng.random()
            if op < 0.5:
                value = bytes([step % 256]) * rng.randrange(1, 600)
                prism.put(key, value, t)
                model[key] = value
            elif op < 0.75:
                assert prism.get(key, t) == model.get(key)
            elif op < 0.9:
                count = rng.randrange(1, 12)
                expected = sorted(
                    (k, v) for k, v in model.items() if k >= key
                )[:count]
                assert prism.scan(key, count, t) == expected
            else:
                assert prism.delete(key, t) == (key in model)
                model.pop(key, None)
        for key, value in model.items():
            assert prism.get(key, t) == value
