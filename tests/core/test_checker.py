"""The consistency auditor: clean stores pass, corrupted stores fail."""

import random

import pytest

from repro.core import pointers as ptr
from repro.core.checker import audit
from repro.core.prism import Prism
from repro.sim.vthread import VThread
from tests.conftest import small_prism_config


@pytest.fixture
def store():
    return Prism(small_prism_config())


@pytest.fixture
def t(store):
    return VThread(0, store.clock)


def _stress(store, t, steps=1500, seed=4):
    rng = random.Random(seed)
    for step in range(steps):
        key = b"a%03d" % rng.randrange(200)
        roll = rng.random()
        if roll < 0.55:
            store.put(key, bytes([step % 256]) * rng.randrange(1, 400), t)
        elif roll < 0.8:
            store.get(key, t)
        elif roll < 0.92:
            store.scan(key, rng.randrange(1, 10), t)
        else:
            store.delete(key, t)


class TestCleanStoresPass:
    def test_empty_store(self, store):
        assert audit(store).ok

    def test_after_stress(self, store, t):
        _stress(store, t)
        report = audit(store)
        assert report.ok, report.violations[:5]
        assert report.keys_checked > 0
        assert report.pwb_values + report.vs_values == report.keys_checked

    def test_after_flush(self, store, t):
        _stress(store, t)
        store.flush()
        report = audit(store)
        assert report.ok, report.violations[:5]
        assert report.pwb_values == 0  # everything drained to flash

    def test_after_crash_recovery(self, store, t):
        _stress(store, t)
        store.crash()
        store.recover()
        report = audit(store)
        assert report.ok, report.violations[:5]

    def test_with_gc_pressure(self):
        from repro.storage.specs import FLASH_SSD_GEN4_SPEC

        tight = Prism(
            small_prism_config(
                num_ssds=1,
                ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(512 * 1024),
                chunk_size=16 * 1024,
                pwb_capacity=32 * 1024,
                gc_free_threshold=0.4,
                svc_capacity=32 * 1024,
            )
        )
        thread = VThread(0, tight.clock)
        rng = random.Random(6)
        for step in range(2500):
            tight.put(b"g%03d" % rng.randrange(300), bytes([step % 256]) * 200, thread)
        assert sum(vs.gc_runs for vs in tight.storages) > 0
        report = audit(tight)
        assert report.ok, report.violations[:5]


class TestCorruptionDetected:
    def test_dangling_forward_pointer(self, store, t):
        store.put(b"k", b"v", t)
        store.put(b"pad", b"p", t)
        store.flush()
        idx = store.index.lookup(b"k")
        loc = store.hsit.read_location(idx)
        store.storages[loc.vs_id].invalidate(loc.chunk_id, loc.vs_offset)
        report = audit(store)
        assert not report.ok
        assert any("I4" in v for v in report.violations)

    def test_ill_coupled_record(self, store, t):
        store.put(b"k", b"v", t)
        idx = store.index.lookup(b"k")
        # Point the entry at someone else's PWB record.
        other_off = store.pwbs[0].append(9999, b"intruder", t)
        store.hsit.publish_location(idx, ptr.encode_pwb(0, other_off), t)
        report = audit(store)
        assert any("I2" in v for v in report.violations)

    def test_lingering_dirty_bit(self, store, t):
        store.put(b"k", b"v", t)
        idx = store.index.lookup(b"k")
        word = store.hsit.location_word(idx)
        addr = store.hsit._addr(idx)
        store.nvm.persist(None, addr, ptr.set_dirty(word).to_bytes(8, "little"))
        report = audit(store)
        assert any("I6" in v for v in report.violations)

    def test_stale_svc_word(self, store, t):
        store.put(b"k", b"v", t)
        store.flush()
        store.get(b"k", t)  # cache it
        idx = store.index.lookup(b"k")
        entry_id = store.hsit.read_svc(idx)
        store.svc.invalidate(entry_id, t)  # freed, word left behind
        report = audit(store)
        assert any("I5" in v for v in report.violations)

    def test_accounting_drift(self, store, t):
        store.put(b"k", b"v", t)
        store.svc.used += 1234
        report = audit(store)
        assert any("accounting drift" in v for v in report.violations)


class TestChecksumInvariant:
    def _checked_store(self):
        return Prism(small_prism_config(enable_checksums=True))

    def test_clean_checked_store_passes(self, t):
        store = self._checked_store()
        store.put(b"k", b"v" * 100, t)
        store.flush()
        assert audit(store).ok

    def test_corrupt_vs_record_fails_i7(self, t):
        store = self._checked_store()
        store.put(b"k", b"v" * 100, t)
        store.flush()
        idx = store.index.lookup(b"k")
        loc = store.hsit.read_location(idx)
        vs = store.storages[loc.vs_id]
        addr = loc.chunk_id * vs.chunk_size + loc.vs_offset + vs.header_size
        raw = bytearray(vs.ssd.read_raw(addr, 1))
        raw[0] ^= 0x20
        vs.ssd.write_raw(addr, bytes(raw))
        report = audit(store)
        assert not report.ok
        assert any("I7" in v for v in report.violations)

    def test_corrupt_pwb_record_fails_i7(self, t):
        store = self._checked_store()
        store.put(b"k", b"v" * 100, t)  # still in the PWB
        idx = store.index.lookup(b"k")
        loc = store.hsit.read_location(idx)
        pwb = store.pwbs[loc.pwb_id]
        pos = pwb.base + loc.pwb_offset % pwb.capacity + pwb.header_size
        raw = bytearray(store.nvm._read_raw(pos, 1))
        raw[0] ^= 0x20
        store.nvm._write_raw(pos, bytes(raw))
        report = audit(store)
        assert any("I7" in v for v in report.violations)

    def test_unchecked_store_skips_i7_sweep(self, store, t):
        # Legacy framing carries no CRC: flipping a payload bit is
        # undetectable (the documented reason enable_checksums exists).
        store.put(b"k", b"v" * 100, t)
        store.flush()
        idx = store.index.lookup(b"k")
        loc = store.hsit.read_location(idx)
        vs = store.storages[loc.vs_id]
        addr = loc.chunk_id * vs.chunk_size + loc.vs_offset + vs.header_size
        raw = bytearray(vs.ssd.read_raw(addr, 1))
        raw[0] ^= 0x20
        vs.ssd.write_raw(addr, bytes(raw))
        assert audit(store).ok
