import pytest

from repro.core.epoch import GRACE_EPOCHS, EpochManager


@pytest.fixture
def mgr():
    return EpochManager()


def test_advance_with_no_threads(mgr):
    assert mgr.try_advance()
    assert mgr.global_epoch == 1


def test_pinned_thread_blocks_advance(mgr):
    mgr.enter(1)
    mgr.try_advance()  # pinned at epoch 0... first advance may pass
    mgr.enter(2)
    first = mgr.global_epoch
    # thread 1 still pinned at an older epoch now
    mgr.exit(2)
    assert mgr.global_epoch == first
    advanced = mgr.try_advance()
    if mgr._pinned[1] != -1 and mgr._pinned[1] < mgr.global_epoch:
        assert not advanced


def test_quiescent_threads_allow_advance(mgr):
    for tid in (1, 2, 3):
        mgr.enter(tid)
        mgr.exit(tid)
    assert mgr.try_advance()


def test_stale_quiescent_thread_blocks(mgr):
    mgr.enter(1)
    mgr.exit(1)
    mgr.try_advance()
    # thread 1 has not been seen in the new epoch
    assert not mgr.try_advance()
    mgr.enter(1)
    mgr.exit(1)
    assert mgr.try_advance()


def test_retire_runs_after_grace(mgr):
    ran = []
    mgr.retire(lambda: ran.append(1))
    for _ in range(GRACE_EPOCHS):
        assert mgr.try_advance()
        # not before the full grace period
    assert ran == [1]


def test_retire_not_early(mgr):
    ran = []
    mgr.retire(lambda: ran.append(1))
    mgr.try_advance()
    assert ran == []


def test_exit_without_enter_raises(mgr):
    with pytest.raises(KeyError):
        mgr.exit(99)


def test_drain_forces_everything(mgr):
    ran = []
    mgr.retire(lambda: ran.append(1))
    mgr.retire(lambda: ran.append(2))
    mgr.drain()
    assert ran == [1, 2]
    assert mgr.pending == 0


def test_unregister_removes_blocker(mgr):
    mgr.enter(1)
    mgr.enter(2)
    mgr.exit(2)
    mgr.try_advance()
    mgr.exit(1)
    mgr.try_advance()
    mgr.unregister(1)
    # only thread 2 matters now
    mgr.enter(2)
    mgr.exit(2)
    assert mgr.try_advance()


def test_reclaimed_counter(mgr):
    mgr.retire(lambda: None)
    mgr.drain()
    assert mgr.reclaimed == 1
