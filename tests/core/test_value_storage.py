import pytest

from repro.core.value_storage import ValueStorage
from repro.storage.base import StorageError
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from repro.storage.ssd import SSDDevice

MB = 1024**2
CHUNK = 16 * 1024


@pytest.fixture
def vs(ssd):
    return ValueStorage(0, ssd, chunk_size=CHUNK)


class TestWriteRead:
    def test_single_record_roundtrip(self, vs):
        placements, done = vs.write_records(0.0, [(7, b"hello-value")])
        assert done > 0
        ((chunk_id, offset, size),) = placements
        assert size == 11
        back, value = vs.read_record_raw(chunk_id, offset)
        assert (back, value) == (7, b"hello-value")

    def test_records_pack_into_one_chunk(self, vs):
        records = [(i, bytes([i]) * 100) for i in range(20)]
        placements, _ = vs.write_records(0.0, records)
        assert len({c for c, _, _ in placements}) == 1
        for (idx, val), (c, o, _s) in zip(records, placements):
            assert vs.read_record_raw(c, o) == (idx, val)

    def test_spill_to_second_chunk(self, vs):
        big = CHUNK // 3
        records = [(i, b"x" * big) for i in range(4)]
        placements, _ = vs.write_records(0.0, records)
        assert len({c for c, _, _ in placements}) == 2

    def test_record_too_large(self, vs):
        with pytest.raises(StorageError):
            vs.write_records(0.0, [(0, b"x" * (CHUNK + 1))])

    def test_record_request_sizes(self, vs):
        ((chunk_id, offset, _),) = vs.write_records(0.0, [(1, b"abc")])[0]
        req = vs.record_request(chunk_id, offset)
        assert req.size == 12 + 3
        assert vs.slot_size(chunk_id, offset) == 3

    def test_parse_record(self, vs):
        raw = (5).to_bytes(8, "little") + (3).to_bytes(4, "little") + b"xyz!!"
        assert vs.parse_record(raw) == (5, b"xyz")

    def test_unknown_slot_rejected(self, vs):
        with pytest.raises(StorageError):
            vs.record_request(0, 0)


class TestValidityBitmap:
    def test_new_records_valid(self, vs):
        ((c, o, _),) = vs.write_records(0.0, [(1, b"v")])[0]
        assert vs.is_valid(c, o)

    def test_invalidate(self, vs):
        placements, _ = vs.write_records(0.0, [(1, b"a"), (2, b"b")])
        c, o, _ = placements[0]
        vs.invalidate(c, o)
        assert not vs.is_valid(c, o)

    def test_chunk_freed_when_empty(self, vs):
        placements, _ = vs.write_records(0.0, [(1, b"a")])
        free_before = vs.free_chunks
        c, o, _ = placements[0]
        vs.invalidate(c, o)
        assert vs.free_chunks == free_before + 1

    def test_double_invalidate_harmless(self, vs):
        placements, _ = vs.write_records(0.0, [(1, b"a"), (2, b"b")])
        c, o, _ = placements[0]
        vs.invalidate(c, o)
        vs.invalidate(c, o)
        assert vs.used_chunks == 1


class TestGC:
    def test_victims_are_least_live(self, vs):
        p1, _ = vs.write_records(0.0, [(i, b"x" * 200) for i in range(10)])
        p2, _ = vs.write_records(0.0, [(i + 10, b"x" * 200) for i in range(10)])
        chunk1 = p1[0][0]
        chunk2 = p2[0][0]
        for c, o, _ in p1[:8]:
            vs.invalidate(c, o)
        victims = vs.gc_victims(1)
        assert victims == [chunk1]

    def test_live_records_of(self, vs):
        placements, _ = vs.write_records(0.0, [(1, b"a"), (2, b"b")])
        c, o, _ = placements[0]
        vs.invalidate(c, o)
        live = vs.live_records_of(c)
        assert len(live) == 1
        assert live[0].hsit_idx == 2

    def test_live_records_of_unknown_chunk(self, vs):
        assert vs.live_records_of(12345) == []


class TestSyncAppend:
    def test_sync_append_roundtrip(self, vs, thread):
        chunk_id, offset = vs.append_record_sync(thread, 5, b"sync-value")
        assert vs.read_record_raw(chunk_id, offset) == (5, b"sync-value")
        assert thread.now > 0

    def test_sync_appends_share_chunk(self, vs, thread):
        c1, _ = vs.append_record_sync(thread, 1, b"a" * 100)
        c2, _ = vs.append_record_sync(thread, 2, b"b" * 100)
        assert c1 == c2

    def test_sync_append_rolls_chunk_when_full(self, vs, thread):
        big = CHUNK // 2
        c1, _ = vs.append_record_sync(thread, 1, b"a" * big)
        c2, _ = vs.append_record_sync(thread, 2, b"b" * big)
        assert c1 != c2


class TestRebuild:
    def test_rebuild_from_live_map(self, vs, ssd):
        placements, _ = vs.write_records(0.0, [(1, b"aa"), (2, b"bb"), (3, b"cc")])
        live = {
            (c, o): (idx, s)
            for (idx, _v), (c, o, s) in zip([(1, b"aa"), (2, b"bb"), (3, b"cc")], placements)
            if idx != 2
        }
        vs.rebuild_from(live)
        c, o, s = placements[0]
        assert vs.is_valid(c, o)
        with pytest.raises(StorageError):
            vs.is_valid(placements[1][0], placements[1][1])
        assert vs.read_record_raw(c, o) == (1, b"aa")

    def test_rebuild_frees_unreferenced_chunks(self, vs):
        vs.write_records(0.0, [(1, b"x")])
        vs.rebuild_from({})
        assert vs.used_chunks == 0
        assert vs.free_chunks == vs.num_chunks


def test_chunk_size_validation(ssd):
    with pytest.raises(ValueError):
        ValueStorage(0, ssd, chunk_size=100)


def test_space_stats(vs):
    assert vs.free_fraction() == 1.0
    vs.write_records(0.0, [(1, b"x")])
    assert vs.used_bytes() == CHUNK
    assert vs.free_fraction() < 1.0
