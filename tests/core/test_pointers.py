import pytest
from hypothesis import given, strategies as st

from repro.core import pointers as ptr


class TestEncoding:
    def test_null(self):
        loc = ptr.decode(0)
        assert loc.is_null
        assert not loc.in_pwb and not loc.in_vs

    def test_pwb_roundtrip(self):
        word = ptr.encode_pwb(5, 123456)
        loc = ptr.decode(word)
        assert loc.in_pwb
        assert loc.pwb_id == 5
        assert loc.pwb_offset == 123456

    def test_vs_roundtrip(self):
        word = ptr.encode_vs(3, 2_000_000, 400_000)
        loc = ptr.decode(word)
        assert loc.in_vs
        assert (loc.vs_id, loc.chunk_id, loc.vs_offset) == (3, 2_000_000, 400_000)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            ptr.encode_pwb(1 << 13, 0)
        with pytest.raises(ValueError):
            ptr.encode_pwb(0, 1 << 48)
        with pytest.raises(ValueError):
            ptr.encode_vs(256, 0, 0)
        with pytest.raises(ValueError):
            ptr.encode_vs(0, 1 << 21, 0)
        with pytest.raises(ValueError):
            ptr.encode_vs(0, 0, 1 << 32)

    def test_words_fit_in_64_bits(self):
        word = ptr.encode_vs(255, (1 << 21) - 1, (1 << 32) - 1)
        assert ptr.set_dirty(word) < 1 << 64


class TestDirtyBit:
    def test_set_clear(self):
        word = ptr.encode_pwb(1, 2)
        dirty = ptr.set_dirty(word)
        assert ptr.is_dirty(dirty)
        assert not ptr.is_dirty(word)
        assert ptr.clear_dirty(dirty) == word

    def test_dirty_does_not_disturb_payload(self):
        word = ptr.encode_vs(9, 77, 88)
        assert ptr.decode(ptr.set_dirty(word) & ~ptr.DIRTY_BIT) == ptr.decode(word)


class TestFreeList:
    def test_free_link_roundtrip(self):
        word = ptr.encode_free_link(42)
        assert ptr.medium_of(word) == ptr.MEDIUM_NULL
        assert ptr.free_link_of(word) == 42

    def test_zero_is_end(self):
        assert ptr.free_link_of(ptr.encode_free_link(0)) == 0


@given(pwb_id=st.integers(0, (1 << 13) - 1), offset=st.integers(0, (1 << 48) - 1))
def test_pwb_roundtrip_property(pwb_id, offset):
    loc = ptr.decode(ptr.encode_pwb(pwb_id, offset))
    assert (loc.pwb_id, loc.pwb_offset) == (pwb_id, offset)


@given(
    vs=st.integers(0, 255),
    chunk=st.integers(0, (1 << 21) - 1),
    off=st.integers(0, (1 << 32) - 1),
)
def test_vs_roundtrip_property(vs, chunk, off):
    loc = ptr.decode(ptr.encode_vs(vs, chunk, off))
    assert (loc.vs_id, loc.chunk_id, loc.vs_offset) == (vs, chunk, off)


@given(
    vs=st.integers(0, 255),
    chunk=st.integers(0, (1 << 21) - 1),
    off=st.integers(0, (1 << 32) - 1),
)
def test_encode_decode_inverse(vs, chunk, off):
    loc = ptr.decode(ptr.encode_vs(vs, chunk, off))
    assert ptr.encode(loc) == ptr.encode_vs(vs, chunk, off)
