import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pwb import PersistentWriteBuffer, PWBFullError
from repro.storage.base import StorageError
from repro.storage.nvm import NVMDevice


@pytest.fixture
def pwb(nvm):
    return PersistentWriteBuffer(nvm, pwb_id=0, capacity=8192)


class TestAppendRead:
    def test_roundtrip(self, pwb):
        offset = pwb.append(42, b"value-bytes")
        back, value = pwb.read(offset)
        assert back == 42
        assert value == b"value-bytes"

    def test_backptr_read(self, pwb):
        offset = pwb.append(7, b"v")
        assert pwb.read_backptr(offset) == 7

    def test_append_is_durable(self, pwb, nvm):
        offset = pwb.append(1, b"durable")
        nvm.crash()
        assert pwb.read(offset)[1] == b"durable"

    def test_empty_value_rejected(self, pwb):
        with pytest.raises(ValueError):
            pwb.append(1, b"")

    def test_offsets_monotonic(self, pwb):
        offsets = [pwb.append(i, b"x" * 10) for i in range(5)]
        assert offsets == sorted(offsets)

    def test_read_released_offset_rejected(self, pwb):
        offset = pwb.append(1, b"x")
        pwb.release_through(pwb.head)
        with pytest.raises(StorageError):
            pwb.read(offset)

    def test_oversized_value_rejected(self, pwb):
        with pytest.raises(PWBFullError):
            pwb.append(1, b"x" * 5000)

    def test_too_small_capacity(self, nvm):
        with pytest.raises(ValueError):
            PersistentWriteBuffer(nvm, 0, capacity=1024)


class TestRing:
    def test_fills_up(self, pwb):
        count = 0
        try:
            while True:
                pwb.append(count, b"y" * 100)
                count += 1
        except PWBFullError:
            pass
        assert count >= 8192 // 128 - 2

    def test_release_frees_space(self, pwb):
        while pwb.would_fit(100):
            pwb.append(0, b"y" * 100)
        pwb.release_through(pwb.head)
        assert pwb.used == 0
        pwb.append(0, b"y" * 100)  # wraps

    def test_wrap_keeps_records_contiguous(self, pwb):
        for _ in range(30):
            if not pwb.would_fit(300):
                pwb.release_through(pwb.head)
            offset = pwb.append(9, b"z" * 300)
            back, value = pwb.read(offset)
            assert (back, value) == (9, b"z" * 300)

    def test_utilization(self, pwb):
        assert pwb.utilization() == 0.0
        pwb.append(0, b"x" * 1000)
        assert 0.1 < pwb.utilization() < 0.2

    def test_release_bounds(self, pwb):
        pwb.append(0, b"x")
        with pytest.raises(ValueError):
            pwb.release_through(pwb.head + 1)


class TestPendingRelease:
    def test_poll_before_done_keeps_space_used(self, pwb):
        pwb.append(0, b"x" * 100)
        upto = pwb.head
        pwb.pending_release = (upto, 5.0)
        pwb.poll(4.9)
        assert pwb.used > 0
        pwb.poll(5.0)
        assert pwb.used == 0

    def test_reset(self, pwb):
        pwb.append(0, b"x")
        pwb.pending_release = (pwb.head, 1.0)
        pwb.reset()
        assert pwb.used == 0
        assert pwb.pending_release is None


class TestReclamationIteration:
    def test_records_between(self, pwb):
        offsets = [pwb.append(i, bytes([i]) * 50) for i in range(10)]
        got = list(pwb.records_between(pwb.tail, pwb.head))
        assert [o for o, _, _ in got] == offsets
        assert [b for _, b, _ in got] == list(range(10))

    def test_records_between_respects_bounds(self, pwb):
        offsets = [pwb.append(i, b"v" * 50) for i in range(10)]
        got = list(pwb.records_between(offsets[3], offsets[7]))
        assert [b for _, b, _ in got] == [3, 4, 5, 6]

    def test_release_drops_old_offsets(self, pwb):
        pwb.append(0, b"a" * 50)
        mid = pwb.head
        pwb.append(1, b"b" * 50)
        pwb.release_through(mid)
        got = list(pwb.records_between(pwb.tail, pwb.head))
        assert [b for _, b, _ in got] == [1]


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=60)
)
def test_property_ring_roundtrip(values):
    """Appended records are readable until released, across wraps."""
    pwb = PersistentWriteBuffer(NVMDevice(), 0, capacity=8192)
    live = {}
    for i, value in enumerate(values):
        if not pwb.would_fit(len(value)):
            pwb.release_through(pwb.head)
            live.clear()
        offset = pwb.append(i, value)
        live[offset] = (i, value)
        for off, (idx, val) in live.items():
            assert pwb.read(off) == (idx, val)


# Sized so a few hundred appends force many trips around the ring.
_WRAP_CAPACITY = 4096


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 600), min_size=1, max_size=300),
    partial_release=st.booleans(),
)
def test_property_records_never_straddle_wrap(sizes, partial_release):
    """Every record's ring footprint is physically contiguous: its
    start position plus its padded size never crosses the capacity
    boundary, no matter how appends and releases interleave."""
    pwb = PersistentWriteBuffer(NVMDevice(), 0, capacity=_WRAP_CAPACITY)
    for i, size in enumerate(sizes):
        if not pwb.would_fit(size):
            if partial_release and pwb._offsets and pwb.tail < pwb._offsets[-1]:
                # Free only the older half, leaving live records behind
                # the wrap point.
                pwb.release_through(pwb._offsets[len(pwb._offsets) // 2])
            if not pwb.would_fit(size):
                pwb.release_through(pwb.head)
        offset = pwb.append(i, b"w" * size)
        pos = offset % pwb.capacity
        assert pos + pwb.record_bytes(size) <= pwb.capacity, (offset, size)


@settings(max_examples=40, deadline=None)
@given(sizes=st.lists(st.integers(1, 600), min_size=1, max_size=200))
def test_property_would_fit_agrees_with_append(sizes):
    """``would_fit`` is exactly the precondition of ``append``: when it
    says yes the append succeeds, when it says no the append raises —
    including around the wrap, where the skipped tail padding makes the
    naive free-space check wrong."""
    pwb = PersistentWriteBuffer(NVMDevice(), 0, capacity=_WRAP_CAPACITY)
    for i, size in enumerate(sizes):
        fits = pwb.would_fit(size)
        if fits:
            pwb.append(i, b"f" * size)
        else:
            head, tail = pwb.head, pwb.tail
            with pytest.raises(PWBFullError):
                pwb.append(i, b"f" * size)
            assert (pwb.head, pwb.tail) == (head, tail)  # failed append is a no-op
            pwb.release_through(pwb.head)


@settings(max_examples=40, deadline=None)
@given(sizes=st.lists(st.integers(1, 500), min_size=4, max_size=250))
def test_property_offsets_roundtrip_across_wraps(sizes):
    """Absolute offsets stay monotonic and resolvable across many
    wraps: each live record reads back its own payload even after the
    ring position has been reused by later generations."""
    pwb = PersistentWriteBuffer(NVMDevice(), 0, capacity=_WRAP_CAPACITY)
    last_offset = -1
    live = {}
    for i, size in enumerate(sizes):
        if not pwb.would_fit(size):
            pwb.release_through(pwb.head)
            live.clear()
        value = (i % 251).to_bytes(1, "little") * size
        offset = pwb.append(i, value)
        assert offset > last_offset  # absolute offsets never repeat
        last_offset = offset
        live[offset] = (i, value)
        for off, (idx, val) in live.items():
            assert pwb.read(off) == (idx, val)
    wraps = pwb.head // pwb.capacity
    # The generator sizes guarantee several trips around the ring.
    if sum(pwb.record_bytes(s) for s in sizes) > 3 * _WRAP_CAPACITY:
        assert wraps >= 2
