"""White-box tests for Prism's internal mechanisms."""

import pytest

from repro.core import pointers as ptr
from repro.core.prism import Prism
from repro.sim.vthread import VThread
from tests.conftest import small_prism_config


@pytest.fixture
def store():
    return Prism(small_prism_config(num_threads=2))


@pytest.fixture
def t(store):
    return VThread(0, store.clock)


class TestStoragePicking:
    def test_prefers_idle_storage(self, store):
        # Make storage 0 busy far into the future.
        from repro.storage.iouring import IORequest

        vs0 = store.storages[0]
        vs0.ring.submit(0.0, [IORequest("read", 0, 4096)])
        # At time 0 the request is still in flight on vs0.
        picked = store._pick_storage(1e-9)
        assert picked.vs_id == 1

    def test_round_robin_when_all_idle(self, store):
        first = store._pick_storage(1e9)
        second = store._pick_storage(1e9)
        assert first.vs_id != second.vs_id


class TestMergedScanReads:
    def test_adjacent_records_merge_into_one_io(self, store, t):
        """After reorganization, a scan over a contiguous range costs
        one SSD IO, not one per value."""
        # Write a contiguous run directly into one Value Storage chunk.
        vs = store.storages[0]
        idxs = [store.hsit.allocate() for _ in range(10)]
        records = [(idx, b"v%02d" % i) for i, idx in enumerate(idxs)]
        placements, _ = vs.write_records(0.0, records)
        items = []
        for (idx, _v), (chunk, off, _s) in zip(records, placements):
            store.hsit.publish_location(idx, ptr.encode_vs(0, chunk, off))
            items.append((chunk, off, idx, b"k%02d" % idx))
        ios_before = vs.ssd.read_ios
        out = store._fetch_merged(0, items, t)
        assert vs.ssd.read_ios == ios_before + 1  # single merged read
        assert [v for _, _, v in out] == [b"v%02d" % i for i in range(10)]

    def test_scattered_records_need_separate_ios(self, store, t):
        vs = store.storages[0]
        items = []
        for i in range(4):
            idx = store.hsit.allocate()
            # one record per chunk -> nothing adjacent
            placements, _ = vs.write_records(0.0, [(idx, b"x" * 2000)])
            chunk, off, _ = placements[0]
            store.hsit.publish_location(idx, ptr.encode_vs(0, chunk, off))
            items.append((chunk, off, idx, b"k%d" % i))
        ios_before = vs.ssd.read_ios
        store._fetch_merged(0, items, t)
        assert vs.ssd.read_ios == ios_before + 4


class TestSupersede:
    def test_vs_slot_invalidated_on_update(self, store, t):
        store.put(b"k", b"v1", t)
        store.put(b"other", b"o1", t)  # keeps the chunk partially live
        store.flush()
        idx = store.index.lookup(b"k")
        loc = store.hsit.read_location(idx)
        assert store.storages[loc.vs_id].is_valid(loc.chunk_id, loc.vs_offset)
        store.put(b"k", b"v2", t)
        assert not store.storages[loc.vs_id].is_valid(loc.chunk_id, loc.vs_offset)

    def test_pwb_version_superseded_without_vs_traffic(self, store, t):
        store.put(b"k", b"v1", t)
        ssd_before = store.ssd_bytes_written()
        store.put(b"k", b"v2", t)
        assert store.ssd_bytes_written() == ssd_before


class TestEpochIntegration:
    def test_deleted_hsit_entry_eventually_reused(self, store, t):
        store.put(b"k", b"v", t)
        idx = store.index.lookup(b"k")
        store.delete(b"k", t)
        # Drive epochs forward with unrelated operations.
        for i in range(300):
            store.get(b"nothing%d" % i, t)
        store.epoch.drain()
        allocated = store.hsit.allocate(t)
        assert allocated == idx

    def test_hsit_leak_bounded_by_pending_epochs(self, store, t):
        for i in range(50):
            store.put(b"d%02d" % i, b"v", t)
            store.delete(b"d%02d" % i, t)
        store.epoch.drain()
        assert store.hsit.allocated_entries() == 0


class TestBackgroundIsolation:
    def test_reclamation_charged_to_background(self, store, t):
        pwb = store.pwbs[0]
        # Fill past the watermark with one thread.
        i = 0
        while store.reclaims == 0:
            store.put(b"w%05d" % i, b"x" * 512, t)
            i += 1
        assert store._bg_reclaim.now > 0
        # Foreground op latency stays microsecond-scale.
        before = t.now
        store.put(b"probe", b"x" * 512, t)
        assert t.now - before < 100e-6

    def test_flush_empties_all_pwbs(self, store):
        threads = [VThread(i, store.clock) for i in range(2)]
        for i, thread in enumerate(threads * 20):
            store.put(b"m%03d" % i, b"v" * 100, thread)
        store.flush()
        assert all(pwb.used == 0 for pwb in store.pwbs)
