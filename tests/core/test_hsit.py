import pytest

from repro.core import pointers as ptr
from repro.core.hsit import HSIT
from repro.storage.base import StorageError
from repro.storage.nvm import NVMDevice


@pytest.fixture
def hsit(nvm):
    return HSIT(nvm, capacity=64)


class TestAllocation:
    def test_fresh_allocations_are_distinct(self, hsit):
        assert {hsit.allocate() for _ in range(10)} == set(range(10))

    def test_capacity_exhaustion(self, nvm):
        small = HSIT(nvm, capacity=2)
        small.allocate()
        small.allocate()
        with pytest.raises(StorageError):
            small.allocate()

    def test_free_then_reallocate(self, hsit):
        idx = hsit.allocate()
        hsit.free(idx)
        assert hsit.allocate() == idx

    def test_free_list_is_lifo(self, hsit):
        a = hsit.allocate()
        b = hsit.allocate()
        hsit.free(a)
        hsit.free(b)
        assert hsit.allocate() == b
        assert hsit.allocate() == a

    def test_allocated_entries_counts(self, hsit):
        a = hsit.allocate()
        hsit.allocate()
        hsit.free(a)
        assert hsit.allocated_entries() == 1

    def test_invalid_capacity(self, nvm):
        with pytest.raises(ValueError):
            HSIT(nvm, capacity=0)

    def test_index_bounds(self, hsit):
        with pytest.raises(StorageError):
            hsit.read_location(64)


class TestLocationProtocol:
    def test_publish_then_read(self, hsit):
        idx = hsit.allocate()
        word = ptr.encode_pwb(1, 100)
        old = hsit.publish_location(idx, word)
        assert old.is_null
        assert hsit.read_location(idx) == ptr.decode(word)

    def test_publish_returns_old_location(self, hsit):
        idx = hsit.allocate()
        hsit.publish_location(idx, ptr.encode_pwb(1, 100))
        old = hsit.publish_location(idx, ptr.encode_vs(0, 5, 6))
        assert old.in_pwb and old.pwb_offset == 100

    def test_publish_leaves_clean_bit(self, hsit):
        idx = hsit.allocate()
        hsit.publish_location(idx, ptr.encode_pwb(0, 8))
        assert not ptr.is_dirty(hsit.location_word(idx))

    def test_flush_on_read_clears_persisted_dirty(self, hsit, nvm):
        idx = hsit.allocate()
        addr = hsit._addr(idx)
        # Simulate a writer that crashed between flush and clear-dirty:
        word = ptr.set_dirty(ptr.encode_pwb(2, 64))
        nvm.persist(None, addr, word.to_bytes(8, "little"))
        loc = hsit.read_location(idx)
        assert loc.in_pwb and loc.pwb_offset == 64
        assert hsit.reader_flushes == 1
        assert not ptr.is_dirty(hsit.location_word(idx))

    def test_clear_dirty_bit_helper(self, hsit, nvm):
        idx = hsit.allocate()
        addr = hsit._addr(idx)
        nvm.persist(
            None, addr, ptr.set_dirty(ptr.encode_pwb(0, 1)).to_bytes(8, "little")
        )
        hsit.clear_dirty_bit(idx)
        assert not ptr.is_dirty(hsit.location_word(idx))

    def test_timed_publish_advances_thread(self, hsit, thread):
        idx = hsit.allocate(thread)
        before = thread.now
        hsit.publish_location(idx, ptr.encode_pwb(0, 0), thread)
        assert thread.now > before


class TestCrash:
    def test_unflushed_publish_rolls_back(self, hsit, nvm):
        """Crash between store and flush: the old pointer survives."""
        idx = hsit.allocate()
        hsit.publish_location(idx, ptr.encode_pwb(1, 100))
        nvm.crash()  # drops the unflushed clear-dirty store
        # Worst case the dirty bit is set, but the *pointer* is the new one
        loc = ptr.decode(ptr.clear_dirty(hsit.location_word(idx)))
        assert loc.in_pwb and loc.pwb_offset == 100

    def test_publish_is_durable_modulo_dirty_bit(self, hsit, nvm):
        idx = hsit.allocate()
        hsit.publish_location(idx, ptr.encode_vs(0, 3, 4))
        nvm.crash()
        hsit.clear_dirty_bit(idx)
        assert hsit.read_location(idx) == ptr.decode(ptr.encode_vs(0, 3, 4))

    def test_freelist_survives_crash(self, hsit, nvm):
        a = hsit.allocate()
        hsit.free(a)
        nvm.crash()
        assert hsit.allocate() == a


class TestSVCWord:
    def test_set_read_clear(self, hsit):
        idx = hsit.allocate()
        assert hsit.read_svc(idx) is None
        hsit.set_svc(idx, 0)
        assert hsit.read_svc(idx) == 0
        hsit.set_svc(idx, 17)
        assert hsit.read_svc(idx) == 17
        hsit.clear_svc(idx)
        assert hsit.read_svc(idx) is None

    def test_svc_word_independent_of_location(self, hsit):
        idx = hsit.allocate()
        hsit.publish_location(idx, ptr.encode_vs(0, 1, 2))
        hsit.set_svc(idx, 5)
        assert hsit.read_location(idx).in_vs
        assert hsit.read_svc(idx) == 5

    def test_free_clears_svc_word(self, hsit):
        idx = hsit.allocate()
        hsit.set_svc(idx, 9)
        hsit.free(idx)
        reused = hsit.allocate()
        assert reused == idx
        assert hsit.read_svc(reused) is None


def test_nvm_bytes_accounting(hsit):
    hsit.allocate()
    hsit.allocate()
    assert hsit.nvm_bytes() == 16 + 2 * 16
