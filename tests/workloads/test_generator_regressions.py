"""Regression tests for the workload-generator fixes (ISSUE 6).

Three bugs, each pinned here with the exact input that triggered it:

* the closed-form Zipfian could return rank ``n`` (one past the key
  space) when the uniform draw was close enough to 1;
* ``WorkloadSpec.insert`` reported float residue (~1e-16) for mixes
  that sum to 1.0, letting nominally insert-free workloads emit
  phantom inserts on a rare draw;
* ``ScrambledZipfianGenerator`` had no ``grow()``, so scrambled
  streams kept sampling the stale key range after inserts.
"""

from __future__ import annotations

import random

from repro.workloads.generator import OpStream
from repro.workloads.zipfian import (
    HotKeyStormGenerator,
    ScrambledZipfianGenerator,
    ZipfianGenerator,
)
from repro.workloads.ycsb import WorkloadSpec, YCSB_B, YCSB_D, YCSB_E


class StubRng:
    """random()-compatible stub replaying a fixed sequence."""

    def __init__(self, *values: float) -> None:
        self._values = list(values)

    def random(self) -> float:
        return self._values.pop(0)


# ----------------------------------------------------------------------
# Zipfian closed-form overflow
# ----------------------------------------------------------------------
def test_closed_form_clamps_u_near_one():
    # 1 - 2**-53 is the largest value random() can return; the
    # closed-form base then rounds to exactly 1.0 and the unclamped
    # rank came out as n — one past the key space.
    u_max = 1.0 - 2.0**-53
    for theta in (0.5, 0.8, 0.99):
        gen = ZipfianGenerator(1000, theta, StubRng(u_max))
        assert gen.next() == 999


def test_closed_form_in_range_across_draws():
    gen = ZipfianGenerator(100, 0.99, random.Random(7))
    for _ in range(5000):
        assert 0 <= gen.next() < 100


def test_tiny_key_spaces_use_exact_regime():
    # n == 2 made the closed form's eta expression 0/0 (zeta_2 ==
    # zeta_n); these now fall back to exact CDF inversion.
    for n in (1, 2):
        gen = ZipfianGenerator(n, 0.5, random.Random(3))
        for _ in range(200):
            assert 0 <= gen.next() < n


# ----------------------------------------------------------------------
# Phantom-insert float residue
# ----------------------------------------------------------------------
def test_insert_share_snaps_float_residue_to_zero():
    # 1.0 - 0.95 - 0.05 is ~4.2e-17 in floats, not a real insert share.
    for spec in (YCSB_B, YCSB_D, YCSB_E):
        assert spec.insert == 0.0


def test_real_insert_shares_survive_the_snap():
    spec = WorkloadSpec(name="insert-heavy", read=0.5, update=0.4)
    assert abs(spec.insert - 0.1) < 1e-12


def test_no_phantom_insert_on_extreme_roll():
    # A roll of 1 - 2**-53 lands above read + update in floats; before
    # the fix it fell through to the insert branch of YCSB-B.
    stream = OpStream(YCSB_B, num_keys=100, seed=0)
    stream.rng = StubRng(1.0 - 2.0**-53, 0.3)  # roll, then key draw
    op = next(stream.ops(1))
    assert op.kind != "insert"


def test_insert_free_specs_emit_no_inserts():
    for spec in (YCSB_B, YCSB_D, YCSB_E):
        stream = OpStream(spec, num_keys=500, seed=11)
        kinds = {op.kind for op in stream.ops(4000)}
        assert "insert" not in kinds


# ----------------------------------------------------------------------
# ScrambledZipfianGenerator.grow
# ----------------------------------------------------------------------
def test_scrambled_grow_updates_n_and_range():
    gen = ScrambledZipfianGenerator(10, 0.99, random.Random(5))
    gen.grow(1000)
    assert gen.n == 1000
    assert gen._zipf.n == 1000
    seen = {gen.next() for _ in range(3000)}
    assert all(0 <= k < 1000 for k in seen)
    # The widened hash modulo actually reaches beyond the old range.
    assert any(k >= 10 for k in seen)


def test_scrambled_grow_ignores_shrink():
    gen = ScrambledZipfianGenerator(100, 0.99, random.Random(5))
    gen.grow(50)
    assert gen.n == 100 and gen._zipf.n == 100


# ----------------------------------------------------------------------
# Hot-key storm generator
# ----------------------------------------------------------------------
def test_hotstorm_celebrities_absorb_configured_share():
    gen = HotKeyStormGenerator(
        10_000, theta=1.2, rng=random.Random(9),
        celebrities=5, celebrity_share=0.35,
    )
    celebrity_keys = {
        __import__("zlib").crc32(r.to_bytes(8, "little")) % 10_000
        for r in range(5)
    }
    draws = [gen.next() for _ in range(20_000)]
    share = sum(1 for d in draws if d in celebrity_keys) / len(draws)
    # Boost (35%) stacks on the tail's natural mass for the same keys.
    assert share > 0.30
    assert all(0 <= d < 10_000 for d in draws)


def test_hotstorm_grow_delegates():
    gen = HotKeyStormGenerator(100, rng=random.Random(1))
    gen.grow(500)
    assert gen.n == 500 and gen._tail.n == 500
