from collections import Counter

import pytest

from repro.workloads.generator import (
    InsertSequence,
    Op,
    OpStream,
    key_index,
    make_key,
    make_value,
)
from repro.workloads.ycsb import WORKLOADS, YCSB_A, YCSB_C, YCSB_E, YCSB_LOAD


class TestKeysValues:
    def test_key_format(self):
        assert make_key(7) == b"user000000000007"
        assert key_index(make_key(12345)) == 12345

    def test_keys_sort_like_indexes(self):
        keys = [make_key(i) for i in (0, 5, 100, 99999)]
        assert keys == sorted(keys)

    def test_value_deterministic_and_sized(self):
        assert make_value(b"k", 100) == make_value(b"k", 100)
        assert len(make_value(b"k", 100)) == 100
        assert len(make_value(b"k", 1)) == 1

    def test_value_varies_by_key_and_version(self):
        assert make_value(b"a", 64) != make_value(b"b", 64)
        assert make_value(b"a", 64, version=1) != make_value(b"a", 64, version=2)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_value(b"k", 0)


class TestOpStream:
    def test_mix_matches_spec(self):
        stream = OpStream(YCSB_A, 1000, seed=1)
        kinds = Counter(op.kind for op in stream.ops(5000))
        assert abs(kinds["read"] / 5000 - 0.5) < 0.05
        assert abs(kinds["update"] / 5000 - 0.5) < 0.05

    def test_read_only(self):
        stream = OpStream(YCSB_C, 1000, seed=2)
        assert all(op.kind == "read" for op in stream.ops(1000))

    def test_scan_lengths_bounded(self):
        stream = OpStream(YCSB_E, 1000, seed=3)
        scans = [op for op in stream.ops(2000) if op.kind == "scan"]
        assert scans
        assert all(1 <= op.scan_length <= YCSB_E.max_scan_length for op in scans)

    def test_updates_carry_values(self):
        stream = OpStream(YCSB_A, 1000, value_size=256, seed=4)
        for op in stream.ops(500):
            if op.kind == "update":
                assert op.value is not None and len(op.value) == 256

    def test_load_uses_insert_sequence(self):
        seq = InsertSequence(0, shuffle_span=0)
        stream = OpStream(YCSB_LOAD, 1000, seed=5, insert_seq=seq)
        ops = list(stream.ops(100))
        assert all(op.kind == "insert" for op in ops)
        assert sorted(key_index(op.key) for op in ops) == list(range(100))

    def test_unknown_distribution_rejected(self):
        bad = YCSB_C.__class__(name="X", read=1.0, distribution="gauss")
        with pytest.raises(ValueError):
            OpStream(bad, 10)


class TestInsertSequence:
    def test_sequential(self):
        seq = InsertSequence()
        assert [seq.next() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_shuffled_window_is_permutation(self):
        seq = InsertSequence(0, shuffle_span=64, seed=1)
        drawn = [seq.next() for _ in range(128)]
        assert sorted(drawn) == list(range(128))
        assert drawn != list(range(128))  # actually shuffled

    def test_start_offset(self):
        seq = InsertSequence(1000)
        assert seq.next() == 1000


class TestSpecs:
    def test_all_workloads_defined(self):
        assert set(WORKLOADS) == {"LOAD", "A", "B", "C", "D", "E"}

    def test_paper_mixes(self):
        assert WORKLOADS["A"].read == 0.5 and WORKLOADS["A"].update == 0.5
        assert WORKLOADS["B"].read == 0.95
        assert WORKLOADS["C"].read == 1.0
        assert WORKLOADS["D"].distribution == "latest"
        assert WORKLOADS["E"].scan == 0.95
        assert WORKLOADS["LOAD"].insert == 1.0

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            YCSB_A.__class__(name="bad", read=0.7, update=0.7)

    def test_nutanix_ratios(self):
        from repro.workloads.nutanix import NUTANIX

        assert NUTANIX.update == 0.57
        assert NUTANIX.read == 0.41
        assert NUTANIX.scan == 0.02
