import io

import pytest

from repro.core.prism import Prism
from repro.sim.vthread import VThread
from repro.workloads.generator import Op
from repro.workloads.trace import TraceWriter, capture_workload, read_trace, replay
from repro.workloads.ycsb import YCSB_A
from tests.conftest import small_prism_config


def test_roundtrip_through_stream():
    buf = io.StringIO()
    ops = [
        Op("update", b"key1", b"value\x00\xff"),
        Op("read", b"key2"),
        Op("scan", b"key3", scan_length=42),
        Op("delete", b"key4"),
    ]
    with TraceWriter(buf) as writer:
        writer.record_all(ops)
    assert writer.ops_written == 4
    buf.seek(0)
    parsed = list(read_trace(buf))
    assert [op.kind for op in parsed] == ["update", "read", "scan", "delete"]
    assert parsed[0].value == b"value\x00\xff"
    assert parsed[2].scan_length == 42


def test_roundtrip_through_file(tmp_path):
    path = tmp_path / "ops.trace"
    with TraceWriter(path) as writer:
        writer.record(Op("insert", b"k", b"v"))
    parsed = list(read_trace(path))
    assert parsed[0].key == b"k"
    assert parsed[0].value == b"v"


def test_comments_and_blank_lines_skipped():
    buf = io.StringIO("# header\n\nget\t6b\n")
    assert len(list(read_trace(buf))) == 1


def test_malformed_line_rejected():
    with pytest.raises(ValueError):
        list(read_trace(io.StringIO("frobnicate\t00\n")))
    with pytest.raises(ValueError):
        list(read_trace(io.StringIO("put\t00\n")))  # missing value


def test_unknown_kind_not_recordable():
    with pytest.raises(ValueError):
        TraceWriter(io.StringIO()).record(Op("read", b"k").__class__("mystery", b"k"))


def test_capture_and_replay_against_store(tmp_path):
    path = tmp_path / "a.trace"
    count = capture_workload(YCSB_A, 300, 100, path, value_size=64, seed=5)
    assert count == 300
    store = Prism(small_prism_config())
    thread = VThread(0, store.clock)
    replayed = replay(store, read_trace(path), thread)
    assert replayed == 300
    assert store.puts + store.gets == 300


def test_replay_is_deterministic_across_engines(tmp_path):
    """The same trace leaves two independent stores identical."""
    path = tmp_path / "d.trace"
    capture_workload(YCSB_A, 400, 120, path, value_size=64, seed=9)
    stores = [Prism(small_prism_config()) for _ in range(2)]
    for store in stores:
        replay(store, read_trace(path), VThread(0, store.clock))
    a, b = stores
    assert list(a.index.items()) == list(b.index.items())
    full_a = a.scan(b"u", 1000)
    full_b = b.scan(b"u", 1000)
    assert full_a == full_b
