import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.zipfian import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)


class TestZipfian:
    def test_in_range(self):
        gen = ZipfianGenerator(1000, 0.99, random.Random(1))
        assert all(0 <= gen.next() < 1000 for _ in range(5000))

    def test_rank_zero_is_most_popular(self):
        gen = ZipfianGenerator(1000, 0.99, random.Random(2))
        counts = Counter(gen.next() for _ in range(20000))
        assert counts[0] == max(counts.values())

    def test_higher_theta_more_skew(self):
        def top1_share(theta):
            gen = ZipfianGenerator(1000, theta, random.Random(3))
            counts = Counter(gen.next() for _ in range(20000))
            return counts[0] / 20000

        assert top1_share(1.2) > top1_share(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=-0.5)

    def test_theta_one_and_above_supported(self):
        """The Figure 9 sweep needs theta up to 1.5; the Gray closed
        form breaks at theta >= 1, so those use exact CDF inversion."""
        for theta in (1.0, 1.2, 1.5):
            gen = ZipfianGenerator(1000, theta, random.Random(11))
            samples = [gen.next() for _ in range(5000)]
            assert all(0 <= s < 1000 for s in samples)
            counts = Counter(samples)
            assert counts[0] == max(counts.values())

    def test_deterministic_with_seed(self):
        a = ZipfianGenerator(100, 0.99, random.Random(7))
        b = ZipfianGenerator(100, 0.99, random.Random(7))
        assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 10_000), theta=st.floats(0.3, 1.5))
    def test_property_in_range(self, n, theta):
        gen = ZipfianGenerator(n, theta, random.Random(0))
        assert all(0 <= gen.next() < n for _ in range(200))

    @pytest.mark.parametrize("theta", [0.5, 0.99, 1.2, 1.5])
    def test_rank_frequencies_match_exponent(self, theta):
        """Least-squares slope of log(frequency) vs log(rank) over the
        head of the distribution recovers -theta, in both sampler
        regimes (closed form below 1, exact inversion at/above)."""
        import math

        n, samples = 500, 120_000
        gen = ZipfianGenerator(n, theta, random.Random(int(theta * 100)))
        counts = Counter(gen.next() for _ in range(samples))
        xs, ys = [], []
        for rank in range(30):
            c = counts.get(rank, 0)
            assert c > 0, f"head rank {rank} never drawn at theta={theta}"
            xs.append(math.log(rank + 1))
            ys.append(math.log(c))
        mx = sum(xs) / len(xs)
        my = sum(ys) / len(ys)
        slope = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sum(
            (x - mx) ** 2 for x in xs
        )
        assert abs(slope + theta) < 0.1, (theta, slope)

    @pytest.mark.parametrize("theta", [0.6, 1.3])
    def test_grow_matches_fresh_generator(self, theta):
        """Incremental growth lands on the same normalization (and, in
        the exact regime, the same CDF) as building at full size."""
        grown = ZipfianGenerator(10, theta, random.Random(1))
        for n in range(11, 301):
            grown.grow(n)
        fresh = ZipfianGenerator(300, theta, random.Random(1))
        assert grown.n == fresh.n
        assert grown.zeta_n == pytest.approx(fresh.zeta_n, rel=1e-12)
        if theta >= 1.0:
            assert grown._cum == pytest.approx(fresh._cum, rel=1e-12)
        else:
            assert grown.eta == pytest.approx(fresh.eta, rel=1e-12)


class TestScrambled:
    def test_in_range(self):
        gen = ScrambledZipfianGenerator(500, 0.99, random.Random(1))
        assert all(0 <= gen.next() < 500 for _ in range(2000))

    def test_hot_keys_not_clustered(self):
        """Scrambling spreads the popular keys across the key space."""
        gen = ScrambledZipfianGenerator(1000, 0.99, random.Random(4))
        counts = Counter(gen.next() for _ in range(20000))
        top10 = [k for k, _ in counts.most_common(10)]
        assert max(top10) - min(top10) > 100

    def test_still_skewed(self):
        gen = ScrambledZipfianGenerator(1000, 0.99, random.Random(5))
        counts = Counter(gen.next() for _ in range(20000))
        top_share = sum(c for _, c in counts.most_common(100)) / 20000
        assert top_share > 0.3  # top 10% of keys get a large share


class TestUniform:
    def test_roughly_flat(self):
        gen = UniformGenerator(100, random.Random(6))
        counts = Counter(gen.next() for _ in range(20000))
        assert max(counts.values()) < 3 * min(counts.values())

    def test_invalid(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)


class TestLatest:
    def test_concentrates_on_small_hot_set(self):
        gen = LatestGenerator(1000, 0.99, random.Random(8))
        counts = Counter(gen.next() for _ in range(20000))
        hot_share = sum(c for _, c in counts.most_common(50)) / 20000
        assert hot_share > 0.5

    def test_hot_set_scattered_across_keyspace(self):
        gen = LatestGenerator(1000, 0.99, random.Random(8))
        counts = Counter(gen.next() for _ in range(20000))
        top10 = [k for k, _ in counts.most_common(10)]
        assert max(top10) - min(top10) > 200

    def test_grow_extends_range(self):
        gen = LatestGenerator(100, 0.99, random.Random(9))
        gen.grow(200)
        assert gen.n == 200
        counts = Counter(gen.next() for _ in range(5000))
        assert any(k > 100 for k in counts)  # new range is used

    def test_grow_ignores_shrink(self):
        gen = LatestGenerator(100, 0.99, random.Random(10))
        gen.grow(50)
        assert gen.n == 100
