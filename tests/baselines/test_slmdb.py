import random

import pytest

from repro.baselines.slmdb import SLMDB, SLMDBConfig
from repro.sim.vthread import VThread
from repro.storage.specs import FLASH_SSD_GEN4_SPEC

KB = 1024
MB = 1024**2


def small_config(**over):
    defaults = dict(
        num_ssds=2,
        ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB),
        memtable_bytes=8 * KB,
        sstable_target_bytes=16 * KB,
        os_page_cache_bytes=64 * KB,
    )
    defaults.update(over)
    return SLMDBConfig(**defaults)


@pytest.fixture
def db():
    return SLMDB(small_config())


@pytest.fixture
def t(db):
    return VThread(0, db.clock)


class TestBasics:
    def test_put_get(self, db, t):
        db.put(b"k", b"v", t)
        assert db.get(b"k", t) == b"v"

    def test_missing(self, db, t):
        assert db.get(b"zz", t) is None

    def test_no_wal_memtable_is_persistent(self, db, t):
        """Writes charge NVM persistence, not a flash WAL."""
        db.put(b"k", b"v" * 100, t)
        assert db.nvm.bytes_written > 0
        assert db.ssd_bytes_written() == 0

    def test_delete(self, db, t):
        db.put(b"k", b"v", t)
        assert db.delete(b"k", t)
        assert db.get(b"k", t) is None

    def test_delete_of_flushed_key(self, db, t):
        for i in range(150):
            db.put(b"d%03d" % i, b"v" * 100, t)
        assert db.flushes > 0
        assert db.delete(b"d000", t)
        db.flush(t)
        assert db.get(b"d000", t) is None
        assert db.index.lookup(b"d000") is None


class TestSingleLevel:
    def test_flush_creates_tables_and_index_entries(self, db, t):
        for i in range(150):
            db.put(b"f%03d" % i, b"v" * 100, t)
        assert db.flushes > 0
        assert db.tables
        assert db.index.lookup(b"f000") is not None

    def test_point_read_via_global_index(self, db, t):
        for i in range(150):
            db.put(b"g%03d" % i, b"val%03d" % i, t)
        db.flush(t)
        for i in range(0, 150, 13):
            assert db.get(b"g%03d" % i, t) == b"val%03d" % i

    def test_selective_compaction_on_overwrites(self, db, t):
        for round_no in range(10):
            for i in range(120):
                db.put(b"s%03d" % i, bytes([round_no]) * 100, t)
        assert db.compactions > 0
        for i in range(120):
            assert db.get(b"s%03d" % i, t) == bytes([9]) * 100

    def test_compaction_reclaims_space(self, db, t):
        for round_no in range(10):
            for i in range(120):
                db.put(b"r%03d" % i, bytes([round_no]) * 100, t)
        db.flush(t)
        live = sum(t_.live_entries for t_ in db.tables.values())
        total = sum(t_.entry_count for t_ in db.tables.values())
        assert live / total > 0.4  # garbage was merged away

    def test_flush_stall_visible_in_latency(self, db):
        thread = VThread(0, db.clock)
        worst = 0.0
        for i in range(200):
            before = thread.now
            db.put(b"w%03d" % i, b"v" * 100, thread)
            worst = max(worst, thread.now - before)
        # the flush (table build + B+-tree inserts) ran on this thread
        assert worst > 100e-6


class TestScan:
    def test_scan_ordered(self, db, t):
        for i in range(200):
            db.put(b"z%03d" % i, b"v%03d" % i, t)
        result = db.scan(b"z050", 20, t)
        assert result == [(b"z%03d" % i, b"v%03d" % i) for i in range(50, 70)]

    def test_scan_merges_memtable_over_tables(self, db, t):
        for i in range(150):
            db.put(b"y%03d" % i, b"old", t)
        db.flush(t)
        db.put(b"y010", b"new", t)
        result = dict(db.scan(b"y010", 3, t))
        assert result[b"y010"] == b"new"

    def test_scan_empty(self, db, t):
        assert db.scan(b"q", 5, t) == []


def test_recovery_is_instant():
    """Persistent memtable + persistent index: nothing to replay."""
    assert SLMDB(small_config()).recovery_time() == 0.0


def test_stats(db, t):
    db.put(b"k", b"v", t)
    stats = db.stats()
    for key in ("puts", "flushes", "compactions", "tables"):
        assert key in stats


def test_randomized_model_check(db, t):
    rng = random.Random(23)
    model = {}
    for step in range(1800):
        key = b"m%03d" % rng.randrange(220)
        op = rng.random()
        if op < 0.6:
            value = bytes([step % 256]) * rng.randrange(1, 250)
            db.put(key, value, t)
            model[key] = value
        elif op < 0.85:
            assert db.get(key, t) == model.get(key)
        elif op < 0.95:
            count = rng.randrange(1, 8)
            expected = sorted((k, v) for k, v in model.items() if k >= key)[:count]
            assert db.scan(key, count, t) == expected
        else:
            db.delete(key, t)
            model.pop(key, None)
    for key, value in model.items():
        assert db.get(key, t) == value
