import random

import pytest

from repro.baselines.lsm.lsm import LSMConfig, LSMStore
from repro.sim.vthread import VThread
from repro.storage.specs import FLASH_SSD_GEN4_SPEC

KB = 1024
MB = 1024**2


def small_config(**over):
    defaults = dict(
        num_ssds=2,
        ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB),
        memtable_bytes=8 * KB,
        l1_target_bytes=64 * KB,
        sstable_target_bytes=16 * KB,
        block_cache_bytes=64 * KB,
        wal_capacity=1 * MB,
    )
    defaults.update(over)
    return LSMConfig(**defaults)


@pytest.fixture
def lsm():
    return LSMStore(small_config())


@pytest.fixture
def t(lsm):
    return VThread(0, lsm.clock)


class TestBasics:
    def test_put_get(self, lsm, t):
        lsm.put(b"k", b"v", t)
        assert lsm.get(b"k", t) == b"v"

    def test_missing(self, lsm, t):
        assert lsm.get(b"none", t) is None

    def test_overwrite(self, lsm, t):
        lsm.put(b"k", b"v1", t)
        lsm.put(b"k", b"v2", t)
        assert lsm.get(b"k", t) == b"v2"

    def test_delete_via_tombstone(self, lsm, t):
        lsm.put(b"k", b"v", t)
        assert lsm.delete(b"k", t)
        assert lsm.get(b"k", t) is None
        assert not lsm.delete(b"k", t)

    def test_delete_shadows_flushed_value(self, lsm, t):
        lsm.put(b"k", b"v", t)
        lsm.flush()
        lsm.delete(b"k", t)
        assert lsm.get(b"k", t) is None
        lsm.flush()
        assert lsm.get(b"k", t) is None


class TestFlushAndLevels:
    def test_memtable_rotation_creates_sstables(self, lsm, t):
        for i in range(200):
            lsm.put(b"f%04d" % i, b"v" * 100, t)
        assert lsm.flushes > 0
        assert any(lsm.levels[i] for i in range(len(lsm.levels)))

    def test_values_survive_flush(self, lsm, t):
        for i in range(100):
            lsm.put(b"s%03d" % i, b"v%03d" % i, t)
        lsm.flush()
        assert len(lsm.memtable) == 0
        for i in range(100):
            assert lsm.get(b"s%03d" % i, t) == b"v%03d" % i

    def test_compaction_triggered(self, lsm, t):
        for i in range(3000):
            lsm.put(b"c%05d" % (i % 800), b"x" * 100, t)
        assert lsm.compactions > 0
        assert lsm.compaction_bytes > 0

    def test_compaction_keeps_newest_version(self, lsm, t):
        for round_no in range(12):
            for i in range(200):
                lsm.put(b"n%03d" % i, bytes([round_no]) * 80, t)
        for i in range(200):
            assert lsm.get(b"n%03d" % i, t) == bytes([11]) * 80

    def test_levels_nonoverlapping_above_l0(self, lsm, t):
        for i in range(3000):
            lsm.put(b"o%05d" % (i % 1000), b"x" * 100, t)
        lsm.flush()
        for level in range(1, len(lsm.levels)):
            tables = lsm.levels[level]
            for a, b in zip(tables, tables[1:]):
                assert a.max_key < b.min_key

    def test_write_amplification_observable(self, lsm, t):
        for i in range(3000):
            lsm.put(b"w%05d" % (i % 500), b"x" * 100, t)
        lsm.flush()
        assert lsm.waf() > 1.0  # LSMs always amplify


class TestScan:
    def test_scan_across_sources(self, lsm, t):
        for i in range(300):
            lsm.put(b"r%04d" % i, b"v%04d" % i, t)
        lsm.flush()
        for i in range(0, 300, 10):
            lsm.put(b"r%04d" % i, b"new%04d" % i, t)  # fresh in memtable
        result = lsm.scan(b"r0000", 50, t)
        assert len(result) == 50
        for key, value in result:
            i = int(key[1:])
            assert value == (b"new%04d" % i if i % 10 == 0 else b"v%04d" % i)

    def test_scan_skips_tombstones(self, lsm, t):
        for i in range(10):
            lsm.put(b"t%02d" % i, b"v", t)
        lsm.delete(b"t05", t)
        keys = [k for k, _ in lsm.scan(b"t00", 10, t)]
        assert b"t05" not in keys and len(keys) == 9

    def test_scan_ordering(self, lsm, t):
        for i in random.Random(3).sample(range(100), 100):
            lsm.put(b"z%03d" % i, b"v", t)
        keys = [k for k, _ in lsm.scan(b"z000", 100, t)]
        assert keys == sorted(keys) and len(keys) == 100


class TestStalls:
    def test_compaction_debt_throttles_writers(self):
        config = small_config(max_compaction_lag=1e-4)
        store = LSMStore(config)
        t = VThread(0, store.clock)
        for i in range(4000):
            store.put(b"s%05d" % (i % 1000), b"x" * 120, t)
        assert store.stall_time > 0

    def test_stats_keys(self, lsm, t):
        lsm.put(b"k", b"v", t)
        stats = lsm.stats()
        for key in ("puts", "flushes", "compactions", "stall_time", "waf"):
            assert key in stats


class TestModelCheck:
    def test_randomized_against_dict(self, lsm, t):
        rng = random.Random(99)
        model = {}
        for step in range(2500):
            key = b"m%03d" % rng.randrange(250)
            op = rng.random()
            if op < 0.6:
                value = bytes([step % 256]) * rng.randrange(1, 200)
                lsm.put(key, value, t)
                model[key] = value
            elif op < 0.85:
                assert lsm.get(key, t) == model.get(key)
            elif op < 0.95:
                count = rng.randrange(1, 10)
                expected = sorted((k, v) for k, v in model.items() if k >= key)[:count]
                assert lsm.scan(key, count, t) == expected
            else:
                lsm.delete(key, t)
                model.pop(key, None)
        for key, value in model.items():
            assert lsm.get(key, t) == value


def test_recovery_time_is_wal_bound(lsm, t):
    lsm.put(b"k", b"v" * 500, t)
    assert lsm.recovery_time() > 0
    lsm.flush()  # truncates the WAL
    assert lsm.recovery_time() == 0.0
