import random

import pytest

from repro.baselines.kvell import KVell, KVellConfig
from repro.sim.vthread import VThread
from repro.storage.specs import FLASH_SSD_GEN4_SPEC

MB = 1024**2


def small_config(**over):
    defaults = dict(
        num_ssds=2,
        workers_per_ssd=2,
        ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB),
        page_cache_bytes=256 * 1024,
    )
    defaults.update(over)
    return KVellConfig(**defaults)


@pytest.fixture
def kv():
    return KVell(small_config())


@pytest.fixture
def t(kv):
    return VThread(0, kv.clock)


class TestBasics:
    def test_put_get(self, kv, t):
        kv.put(b"k", b"v", t)
        assert kv.get(b"k", t) == b"v"

    def test_missing(self, kv, t):
        assert kv.get(b"missing", t) is None

    def test_overwrite_in_place(self, kv, t):
        kv.put(b"k", b"v1", t)
        kv.put(b"k", b"v2", t)
        assert kv.get(b"k", t) == b"v2"

    def test_delete(self, kv, t):
        kv.put(b"k", b"v", t)
        assert kv.delete(b"k", t)
        assert not kv.delete(b"k", t)
        assert kv.get(b"k", t) is None

    def test_size_class_change_reallocates(self, kv, t):
        kv.put(b"k", b"small", t)
        kv.put(b"k", b"x" * 2000, t)
        assert kv.get(b"k", t) == b"x" * 2000
        kv.put(b"k", b"tiny", t)
        assert kv.get(b"k", t) == b"tiny"

    def test_oversized_item_rejected(self, kv, t):
        with pytest.raises(ValueError):
            kv.put(b"k", b"x" * 8000, t)


class TestSharding:
    def test_keys_spread_across_workers(self, kv, t):
        for i in range(200):
            kv.put(b"s%04d" % i, b"v", t)
        populated = sum(1 for w in kv.workers if len(w.index) > 0)
        assert populated == len(kv.workers)

    def test_routing_is_deterministic(self, kv):
        assert kv._route(b"key-1") is kv._route(b"key-1")

    def test_worker_queueing_under_single_hot_key(self, kv):
        """All requests to one key serialize on one worker."""
        from repro.sim.clock import VirtualClock

        threads = [VThread(i, kv.clock) for i in range(4)]
        for _ in range(20):
            for thread in threads:
                kv.put(b"hot", b"v" * 100, thread)
        hot_worker = kv._route(b"hot")
        others = [w for w in kv.workers if w is not hot_worker]
        assert hot_worker.server.busy_time > max(w.server.busy_time for w in others)


class TestPageIO:
    def test_page_granularity_waf(self, kv, t):
        """Updating a 100B value writes a full 4KB page: WAF >> 1."""
        rng = random.Random(1)
        for i in range(300):
            kv.put(b"w%04d" % rng.randrange(300), b"x" * 100, t)
        assert kv.waf() > 5

    def test_cache_hit_avoids_read_io(self, kv, t):
        kv.put(b"k", b"v" * 100, t)
        ios = sum(s.read_ios for s in kv.ssds)
        kv.get(b"k", t)  # page just written -> cached
        assert sum(s.read_ios for s in kv.ssds) == ios

    def test_cold_read_pays_ssd_latency(self, kv):
        writer = VThread(0, kv.clock)
        for i in range(2000):
            kv.put(b"c%05d" % i, b"v" * 1000, writer)
        reader = VThread(1, kv.clock)
        reader.now = writer.now
        before = reader.now
        kv.get(b"c00000", reader)  # long evicted from the small cache
        assert reader.now - before > 40e-6


class TestScan:
    def test_scan_merges_workers_in_order(self, kv, t):
        for i in range(100):
            kv.put(b"r%03d" % i, b"v%03d" % i, t)
        result = kv.scan(b"r010", 20, t)
        assert result == [(b"r%03d" % i, b"v%03d" % i) for i in range(10, 30)]

    def test_scan_count_limit(self, kv, t):
        for i in range(50):
            kv.put(b"s%02d" % i, b"v", t)
        assert len(kv.scan(b"s00", 7, t)) == 7

    def test_scan_empty(self, kv, t):
        assert kv.scan(b"x", 5, t) == []


class TestRecoveryAndStats:
    def test_recovery_scans_used_bytes(self, kv, t):
        for i in range(500):
            kv.put(b"r%04d" % i, b"v" * 1000, t)
        assert kv.recovery_time() > 0
        assert kv.used_bytes() > 0

    def test_stats_keys(self, kv, t):
        kv.put(b"k", b"v", t)
        kv.get(b"k", t)
        stats = kv.stats()
        for key in ("puts", "gets", "cache_hits", "waf", "max_worker_busy"):
            assert key in stats


def test_randomized_model_check():
    kv = KVell(small_config())
    t = VThread(0, kv.clock)
    rng = random.Random(5)
    model = {}
    for step in range(2000):
        key = b"m%03d" % rng.randrange(200)
        op = rng.random()
        if op < 0.6:
            value = bytes([step % 256]) * rng.randrange(1, 900)
            kv.put(key, value, t)
            model[key] = value
        elif op < 0.85:
            assert kv.get(key, t) == model.get(key)
        elif op < 0.95:
            count = rng.randrange(1, 10)
            expected = sorted((k, v) for k, v in model.items() if k >= key)[:count]
            assert kv.scan(key, count, t) == expected
        else:
            assert kv.delete(key, t) == (key in model)
            model.pop(key, None)
    for key, value in model.items():
        assert kv.get(key, t) == value
