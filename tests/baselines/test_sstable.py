from collections import OrderedDict

import pytest

from repro.baselines.lsm.blockstore import BlockStore
from repro.baselines.lsm.sstable import BLOCK_SIZE, SSTable
from repro.sim.vthread import VThread
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from repro.storage.ssd import SSDDevice

MB = 1024**2


@pytest.fixture
def store():
    return BlockStore(SSDDevice(FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB)))


def _entries(n, value_size=100):
    return [(b"k%05d" % i, bytes([i % 256]) * value_size) for i in range(n)]


class TestBuildAndGet:
    def test_roundtrip(self, store):
        entries = _entries(50)
        table, done = SSTable.build(store, entries, at=0.0)
        assert done > 0
        for k, v in entries:
            assert table.get(k) == (True, v)

    def test_missing_key(self, store):
        table, _ = SSTable.build(store, _entries(10), at=0.0)
        assert table.get(b"k00005x") == (False, None)
        assert table.get(b"zzz") == (False, None)

    def test_tombstones_preserved(self, store):
        table, _ = SSTable.build(store, [(b"a", b"v"), (b"b", None)], at=0.0)
        assert table.get(b"b") == (True, None)
        assert table.get(b"a") == (True, b"v")

    def test_min_max_keys(self, store):
        table, _ = SSTable.build(store, _entries(20), at=0.0)
        assert table.min_key == b"k00000"
        assert table.max_key == b"k00019"

    def test_empty_rejected(self, store):
        with pytest.raises(ValueError):
            SSTable.build(store, [], at=0.0)

    def test_blocking_build(self, store, thread):
        table, done = SSTable.build(store, _entries(30), thread=thread)
        assert done == thread.now > 0
        assert table.get(b"k00000", thread)[0]

    def test_multi_block_table(self, store):
        entries = _entries(200, value_size=500)  # ~100KB -> many blocks
        table, _ = SSTable.build(store, entries, at=0.0)
        assert len(table.first_keys) > 1
        for k, v in entries[::17]:
            assert table.get(k) == (True, v)

    def test_value_larger_than_fits_with_others(self, store):
        entries = [(b"a", b"x" * 3000), (b"b", b"y" * 3000)]
        table, _ = SSTable.build(store, entries, at=0.0)
        assert table.get(b"a") == (True, b"x" * 3000)
        assert table.get(b"b") == (True, b"y" * 3000)


class TestOverlap:
    def test_overlaps(self, store):
        table, _ = SSTable.build(store, _entries(10), at=0.0)
        assert table.overlaps(b"k00005", b"k00020")
        assert table.overlaps(b"a", b"z")
        assert not table.overlaps(b"k00010", b"k00020")
        assert not table.overlaps(b"a", b"b")

    def test_covers(self, store):
        table, _ = SSTable.build(store, _entries(10), at=0.0)
        assert table.covers(b"k00004")
        assert not table.covers(b"zzz")


class TestIteration:
    def test_items_from(self, store):
        entries = _entries(100)
        table, _ = SSTable.build(store, entries, at=0.0)
        got = list(table.items_from(b"k00050"))
        assert got == entries[50:]

    def test_items_from_readahead_matches(self, store):
        entries = _entries(300, value_size=200)
        table, _ = SSTable.build(store, entries, at=0.0)
        plain = list(table.items_from(b"k00000", readahead=1))
        ahead = list(table.items_from(b"k00000", readahead=8))
        assert plain == ahead == entries

    def test_readahead_fewer_ios(self, store):
        entries = _entries(300, value_size=200)
        table, _ = SSTable.build(store, entries, at=0.0)
        t1, t2 = VThread(0), VThread(1)
        list(table.items_from(b"k00000", thread=t1, readahead=1))
        ios_single = store.device.read_ios
        list(table.items_from(b"k00000", thread=t2, readahead=8))
        ios_ahead = store.device.read_ios - ios_single
        assert ios_ahead < ios_single / 3

    def test_all_items(self, store):
        entries = _entries(60)
        table, _ = SSTable.build(store, entries, at=0.0)
        assert table.all_items() == entries


class TestBlockCache:
    def test_hit_skips_device(self, store, thread):
        table, _ = SSTable.build(store, _entries(50), at=0.0)
        cache = OrderedDict()
        table.get(b"k00001", thread, cache)
        ios = store.device.read_ios
        table.get(b"k00001", thread, cache)
        assert store.device.read_ios == ios

    def test_miss_cost_charged(self, store):
        table, _ = SSTable.build(store, _entries(50), at=0.0)
        t = VThread(0)
        table.get(b"k00001", t, OrderedDict(), miss_cost=100e-6)
        assert t.now > 100e-6

    def test_parse_cost_charged_on_hit(self, store):
        table, _ = SSTable.build(store, _entries(50), at=0.0)
        cache = OrderedDict()
        t = VThread(0)
        table.get(b"k00001", t, cache)
        before = t.now
        table.get(b"k00001", t, cache, parse_cost=5e-6)
        assert t.now - before >= 5e-6


def test_release_returns_extent(store):
    table, _ = SSTable.build(store, _entries(10), at=0.0)
    live = store.live_bytes
    table.release()
    assert store.live_bytes < live
