import random

import pytest

from repro.baselines.rocksdb_nvm import RocksDBNVM, RocksDBNVMConfig
from repro.sim.vthread import VThread

KB = 1024
MB = 1024**2


def small_config(**over):
    defaults = dict(
        memtable_bytes=8 * KB,
        l1_target_bytes=64 * KB,
        sstable_target_bytes=16 * KB,
        block_cache_bytes=64 * KB,
        wal_capacity=1 * MB,
    )
    defaults.update(over)
    return RocksDBNVMConfig(**defaults)


@pytest.fixture
def rdb():
    return RocksDBNVM(small_config())


@pytest.fixture
def t(rdb):
    return VThread(0, rdb.clock)


def test_everything_lives_on_nvm(rdb, t):
    for i in range(500):
        rdb.put(b"k%04d" % i, b"v" * 100, t)
    rdb.flush()
    assert rdb.ssd_bytes_written() == 0
    assert rdb.nvm_bytes_written() > 0
    assert rdb.ssds == []


def test_waf_is_zero_on_flash_by_construction(rdb, t):
    rdb.put(b"k", b"v", t)
    assert rdb.waf() == 0.0


def test_functional_roundtrip(rdb, t):
    for i in range(300):
        rdb.put(b"r%04d" % i, b"v%04d" % i, t)
    for i in range(300):
        assert rdb.get(b"r%04d" % i, t) == b"v%04d" % i


def test_reads_faster_than_flash_lsm(t):
    """The point of the reference config: NVM block reads, no 50us."""
    from repro.baselines.lsm.lsm import LSMConfig, LSMStore
    from repro.storage.specs import FLASH_SSD_GEN4_SPEC

    rdb = RocksDBNVM(small_config(block_cache_bytes=4 * KB))
    flash = LSMStore(
        LSMConfig(
            num_ssds=1,
            ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(64 * 1024**2),
            memtable_bytes=8 * KB,
            l1_target_bytes=64 * KB,
            sstable_target_bytes=16 * KB,
            block_cache_bytes=4 * KB,
            wal_capacity=1 * MB,
        )
    )
    tr = VThread(0, rdb.clock)
    tf = VThread(0, flash.clock)
    for i in range(300):
        rdb.put(b"k%04d" % i, b"v" * 100, tr)
        flash.put(b"k%04d" % i, b"v" * 100, tf)
    rdb.flush()
    flash.flush()
    r_start, f_start = tr.now, tf.now
    for i in range(0, 300, 7):
        rdb.get(b"k%04d" % i, tr)
        flash.get(b"k%04d" % i, tf)
    assert (tr.now - r_start) < (tf.now - f_start)


def test_stats_include_nvm(rdb, t):
    rdb.put(b"k", b"v", t)
    assert "nvm_bytes_written" in rdb.stats()


def test_randomized_model_check(rdb, t):
    rng = random.Random(17)
    model = {}
    for step in range(1500):
        key = b"m%03d" % rng.randrange(200)
        if rng.random() < 0.65:
            value = bytes([step % 256]) * rng.randrange(1, 250)
            rdb.put(key, value, t)
            model[key] = value
        else:
            assert rdb.get(key, t) == model.get(key)
    for key, value in model.items():
        assert rdb.get(key, t) == value
