from hypothesis import given, settings, strategies as st

from repro.baselines.lsm.memtable import MemTable, TOMBSTONE


def test_insert_get():
    mt = MemTable()
    mt.insert(b"k", b"v")
    assert mt.get(b"k") == (True, b"v")
    assert b"k" in mt
    assert len(mt) == 1


def test_missing_key():
    assert MemTable().get(b"x") == (False, None)


def test_tombstone_found_but_none():
    mt = MemTable()
    mt.insert(b"k", TOMBSTONE)
    assert mt.get(b"k") == (True, None)


def test_overwrite_updates_size():
    mt = MemTable()
    mt.insert(b"k", b"aaaa")
    size1 = mt.approximate_size
    mt.insert(b"k", b"bb")
    assert mt.approximate_size == size1 - 2
    assert len(mt) == 1


def test_items_sorted():
    mt = MemTable()
    for k in (b"c", b"a", b"b"):
        mt.insert(k, k)
    assert [k for k, _ in mt.items()] == [b"a", b"b", b"c"]


def test_items_from():
    mt = MemTable()
    for i in range(10):
        mt.insert(b"k%d" % i, b"v")
    assert [k for k, _ in mt.items_from(b"k5")] == [b"k%d" % i for i in range(5, 10)]


def test_min_max():
    mt = MemTable()
    assert mt.min_key() is None and mt.max_key() is None
    mt.insert(b"m", b"v")
    mt.insert(b"a", b"v")
    assert (mt.min_key(), mt.max_key()) == (b"a", b"m")


def test_extract_range():
    mt = MemTable()
    for i in range(10):
        mt.insert(b"k%d" % i, b"v%d" % i)
    taken = mt.extract_range(b"k3", b"k7")
    assert [k for k, _ in taken] == [b"k3", b"k4", b"k5", b"k6"]
    assert len(mt) == 6
    assert mt.get(b"k3") == (False, None)
    assert mt.get(b"k7") == (True, b"v7")


def test_extract_range_open_end():
    mt = MemTable()
    for i in range(5):
        mt.insert(b"k%d" % i, b"v")
    taken = mt.extract_range(b"k2", None)
    assert len(taken) == 3
    assert len(mt) == 2


@settings(max_examples=50, deadline=None)
@given(
    entries=st.dictionaries(
        st.binary(min_size=1, max_size=8),
        st.one_of(st.none(), st.binary(max_size=32)),
        max_size=80,
    )
)
def test_property_matches_dict(entries):
    mt = MemTable()
    for k, v in entries.items():
        mt.insert(k, v)
    assert list(mt.items()) == sorted(entries.items())
    total = sum(len(k) + (len(v) if v else 0) for k, v in entries.items())
    assert mt.approximate_size == total
