import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.lsm.bloom import BloomFilter


def test_no_false_negatives():
    bf = BloomFilter(expected=100)
    keys = [b"key-%d" % i for i in range(100)]
    for k in keys:
        bf.add(k)
    assert all(bf.might_contain(k) for k in keys)


def test_false_positive_rate_reasonable():
    bf = BloomFilter(expected=1000, fp_rate=0.01)
    for i in range(1000):
        bf.add(b"in-%d" % i)
    fps = sum(bf.might_contain(b"out-%d" % i) for i in range(5000))
    assert fps / 5000 < 0.05  # target 1%, generous margin


def test_empty_filter_rejects():
    bf = BloomFilter(expected=10)
    assert not bf.might_contain(b"anything")


def test_sizing_scales_with_expected():
    small = BloomFilter(expected=10)
    large = BloomFilter(expected=10_000)
    assert large.bits > small.bits
    assert large.size_bytes() > small.size_bytes()


def test_invalid_fp_rate():
    with pytest.raises(ValueError):
        BloomFilter(10, fp_rate=0.0)
    with pytest.raises(ValueError):
        BloomFilter(10, fp_rate=1.0)


def test_zero_expected_clamped():
    bf = BloomFilter(expected=0)
    bf.add(b"x")
    assert bf.might_contain(b"x")


@settings(max_examples=30, deadline=None)
@given(keys=st.sets(st.binary(min_size=1, max_size=16), min_size=1, max_size=100))
def test_property_membership(keys):
    bf = BloomFilter(expected=len(keys))
    for k in keys:
        bf.add(k)
    assert all(bf.might_contain(k) for k in keys)
