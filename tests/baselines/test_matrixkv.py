import random

import pytest

from repro.baselines.matrixkv import MatrixKV, MatrixKVConfig
from repro.sim.vthread import VThread
from repro.storage.specs import FLASH_SSD_GEN4_SPEC

KB = 1024
MB = 1024**2


def small_config(**over):
    defaults = dict(
        num_ssds=2,
        ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB),
        memtable_bytes=8 * KB,
        container_bytes=32 * KB,
        l1_target_bytes=256 * KB,
        sstable_target_bytes=16 * KB,
        block_cache_bytes=64 * KB,
        wal_capacity=1 * MB,
    )
    defaults.update(over)
    return MatrixKVConfig(**defaults)


@pytest.fixture
def mkv():
    return MatrixKV(small_config())


@pytest.fixture
def t(mkv):
    return VThread(0, mkv.clock)


class TestMatrixContainer:
    def test_flush_goes_to_nvm_rows_not_ssd(self, mkv, t):
        ssd_before = mkv.ssd_bytes_written()
        written = 0
        i = 0
        while mkv.flushes == 0:
            mkv.put(b"r%04d" % i, b"v" * 100, t)
            i += 1
        assert mkv.rows  # container populated
        # flush itself wrote nothing to flash (WAL is on NVM too)
        assert mkv.ssd_bytes_written() == ssd_before

    def test_rows_readable(self, mkv, t):
        for i in range(200):
            mkv.put(b"q%04d" % i, b"v%04d" % i, t)
        for i in range(200):
            assert mkv.get(b"q%04d" % i, t) == b"v%04d" % i

    def test_column_compaction_drains_to_l1(self, mkv, t):
        for i in range(1500):
            mkv.put(b"c%05d" % (i % 400), b"x" * 100, t)
        assert mkv.column_compactions > 0
        assert len(mkv.levels) > 1 and mkv.levels[1]
        assert mkv.container_bytes_used <= mkv.config.container_bytes

    def test_column_compaction_preserves_values(self, mkv, t):
        expected = {}
        rng = random.Random(11)
        for step in range(1500):
            key = b"p%03d" % rng.randrange(300)
            value = bytes([step % 256]) * 100
            mkv.put(key, value, t)
            expected[key] = value
        for key, value in expected.items():
            assert mkv.get(key, t) == value

    def test_flush_drains_everything(self, mkv, t):
        for i in range(300):
            mkv.put(b"f%04d" % i, b"v" * 100, t)
        mkv.flush()
        assert not mkv.rows
        assert len(mkv.memtable) == 0
        for i in range(300):
            assert mkv.get(b"f%04d" % i, t) == b"v" * 100

    def test_nvm_traffic_recorded(self, mkv, t):
        for i in range(300):
            mkv.put(b"n%04d" % i, b"v" * 100, t)
        assert mkv.nvm.bytes_written > 0


class TestBehaviourVsStockLSM:
    def test_smaller_stalls_than_stock_lsm(self, t):
        """Column compaction exists to shrink write stalls."""
        from repro.baselines.lsm.lsm import LSMConfig, LSMStore

        mkv = MatrixKV(small_config(max_compaction_lag=1e-4))
        stock = LSMStore(
            LSMConfig(
                num_ssds=2,
                ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB),
                memtable_bytes=8 * KB,
                l1_target_bytes=256 * KB,
                sstable_target_bytes=16 * KB,
                block_cache_bytes=64 * KB,
                wal_capacity=1 * MB,
                max_compaction_lag=1e-4,
            )
        )
        tm = VThread(0, mkv.clock)
        ts = VThread(0, stock.clock)
        for i in range(2500):
            key = b"s%05d" % (i % 600)
            mkv.put(key, b"x" * 120, tm)
            stock.put(key, b"x" * 120, ts)
        assert mkv.stall_time <= stock.stall_time

    def test_scan_sees_rows_and_l1(self, mkv, t):
        for i in range(600):
            mkv.put(b"z%04d" % i, b"v%04d" % i, t)
        result = mkv.scan(b"z0100", 30, t)
        assert result == [(b"z%04d" % i, b"v%04d" % i) for i in range(100, 130)]

    def test_delete(self, mkv, t):
        mkv.put(b"k", b"v", t)
        assert mkv.delete(b"k", t)
        assert mkv.get(b"k", t) is None


def test_randomized_model_check():
    mkv = MatrixKV(small_config())
    t = VThread(0, mkv.clock)
    rng = random.Random(31)
    model = {}
    for step in range(2000):
        key = b"m%03d" % rng.randrange(250)
        op = rng.random()
        if op < 0.6:
            value = bytes([step % 256]) * rng.randrange(1, 300)
            mkv.put(key, value, t)
            model[key] = value
        elif op < 0.85:
            assert mkv.get(key, t) == model.get(key)
        elif op < 0.95:
            count = rng.randrange(1, 8)
            expected = sorted((k, v) for k, v in model.items() if k >= key)[:count]
            assert mkv.scan(key, count, t) == expected
        else:
            mkv.delete(key, t)
            model.pop(key, None)
    for key, value in model.items():
        assert mkv.get(key, t) == value
