import pytest

from repro.baselines.interface import KVStore
from repro.sim.clock import VirtualClock


class _Fake(KVStore):
    def __init__(self):
        self.clock = VirtualClock()
        self.bytes_put = 0
        self._data = {}
        self._ssd = 0

    def put(self, key, value, thread=None):
        self._data[key] = value
        self.bytes_put += len(value)
        self._ssd += 2 * len(value)

    def get(self, key, thread=None):
        return self._data.get(key)

    def scan(self, start, count, thread=None):
        return sorted((k, v) for k, v in self._data.items() if k >= start)[:count]

    def delete(self, key, thread=None):
        return self._data.pop(key, None) is not None

    def ssd_bytes_written(self):
        return self._ssd


def test_name_defaults_to_class_name():
    assert _Fake().name == "_Fake"


def test_waf():
    store = _Fake()
    assert store.waf() == 0.0
    store.put(b"k", b"v" * 10)
    assert store.waf() == pytest.approx(2.0)


def test_stats_include_waf():
    store = _Fake()
    store.put(b"k", b"vv")
    stats = store.stats()
    assert stats["waf"] == pytest.approx(2.0)
    assert stats["ssd_bytes_written"] == 4.0


def test_close_calls_flush():
    calls = []

    class Flushy(_Fake):
        def flush(self, thread=None):
            calls.append(1)

    Flushy().close()
    assert calls == [1]


def test_abstract_without_methods():
    with pytest.raises(TypeError):
        KVStore()
