import pytest

from repro.baselines.lsm.blockstore import BlockStore
from repro.baselines.lsm.wal import WriteAheadLog
from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread
from repro.storage.nvm import NVMDevice
from repro.storage.raid import RAID0
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from repro.storage.ssd import SSDDevice

MB = 1024**2


class TestBlockStore:
    def test_alloc_free_reuse(self, ssd):
        store = BlockStore(ssd)
        a = store.alloc(8000)
        store.free(a, 8000)
        b = store.alloc(8000)
        assert b == a  # exact-size bucket reuse

    def test_alloc_validates(self, ssd):
        with pytest.raises(ValueError):
            BlockStore(ssd).alloc(0)

    def test_exhaustion(self, ssd):
        store = BlockStore(ssd, capacity=8192)
        store.alloc(8192)
        with pytest.raises(MemoryError):
            store.alloc(1)

    def test_live_bytes(self, ssd):
        store = BlockStore(ssd)
        a = store.alloc(5000)
        assert store.used_bytes() >= 5000
        store.free(a, 5000)
        assert store.used_bytes() == 0

    def test_io_on_ssd(self, ssd, thread):
        store = BlockStore(ssd)
        offset = store.alloc(4096)
        store.write(thread, offset, b"data")
        assert store.read(thread, offset, 4) == b"data"

    def test_io_on_nvm(self, nvm, thread):
        store = BlockStore(nvm, capacity=1 * MB)
        offset = store.alloc(4096)
        store.write(thread, offset, b"nvmdata")
        assert store.read(thread, offset, 7) == b"nvmdata"
        assert store.is_nvm

    def test_nvm_writes_durable(self, nvm):
        store = BlockStore(nvm, capacity=1 * MB)
        offset = store.alloc(4096)
        store.write(None, offset, b"keep")
        nvm.crash()
        assert store.read(None, offset, 4) == b"keep"

    def test_io_on_raid(self, thread):
        spec = FLASH_SSD_GEN4_SPEC.with_capacity(16 * MB)
        raid = RAID0([SSDDevice(spec), SSDDevice(spec)])
        store = BlockStore(raid)
        offset = store.alloc(2 * MB)
        payload = bytes(range(256)) * 8192
        store.write(thread, offset, payload)
        assert store.read(thread, offset, len(payload)) == payload

    def test_async_paths(self, ssd):
        store = BlockStore(ssd)
        offset = store.alloc(4096)
        done = store.write_async(0.0, offset, b"async")
        data, rdone = store.read_async(done, offset, 5)
        assert data == b"async"
        assert rdone > done


class TestWAL:
    def test_append_is_durable_and_counted(self, ssd, thread):
        wal = WriteAheadLog(BlockStore(ssd), capacity=1 * MB)
        wal.append(b"key", b"value", thread)
        assert wal.appends == 1
        assert wal.bytes_logged == 6 + 3 + 5
        assert thread.now > 0

    def test_tombstone_record(self, ssd, thread):
        wal = WriteAheadLog(BlockStore(ssd), capacity=1 * MB)
        wal.append(b"key", None, thread)
        assert wal.bytes_logged == 6 + 3

    def test_group_commit_shares_window(self, ssd):
        clock = VirtualClock()
        wal = WriteAheadLog(BlockStore(ssd), capacity=1 * MB)
        a, b = VThread(0, clock), VThread(1, clock)
        b.now = 1e-6  # arrives within the group window
        wal.append(b"k1", b"v1", a)
        wal.append(b"k2", b"v2", b)
        # both commit at (nearly) the same group-commit completion
        assert abs(a.now - b.now) < 5e-6

    def test_wraps_at_capacity(self, ssd, thread):
        wal = WriteAheadLog(BlockStore(ssd), capacity=4096)
        for i in range(100):
            wal.append(b"key%04d" % i, b"v" * 100, thread)
        assert wal.head <= 4096

    def test_truncate(self, ssd, thread):
        wal = WriteAheadLog(BlockStore(ssd), capacity=1 * MB)
        wal.append(b"k", b"v", thread)
        wal.truncate()
        assert wal.head == 0

    def test_untimed_append(self, ssd):
        wal = WriteAheadLog(BlockStore(ssd), capacity=1 * MB)
        wal.append(b"k", b"v", None)
        assert wal.appends == 1
