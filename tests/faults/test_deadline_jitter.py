"""Per-op deadline budgets and bounded decorrelated backoff jitter."""

import pytest

from repro.faults.errors import DeadlineExceededError, TransientWriteError
from repro.faults.retry import RetryExecutor, RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread
from repro.storage.base import StorageError


def _thread():
    return VThread(0, VirtualClock())


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, at=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise TransientWriteError("dev", "write")
        return "ok" if at is None else at


class TestDeadline:
    def test_backoff_past_deadline_raises_typed(self):
        metrics = MetricsRegistry()
        exe = RetryExecutor(
            RetryPolicy(max_retries=4, backoff_base=100e-6), metrics=metrics
        )
        thread = _thread()
        with pytest.raises(DeadlineExceededError) as err:
            exe.run(Flaky(99), thread=thread, device="dev", op="write",
                    deadline=50e-6)
        # The executor refused to sleep: the thread never crossed it.
        assert thread.now <= 50e-6
        assert err.value.deadline == 50e-6
        assert isinstance(err.value, StorageError)
        assert exe.deadline_exceeded == 1
        assert metrics.counter("faults.deadline_exceeded").value == 1

    def test_deadline_with_headroom_does_not_fire(self):
        exe = RetryExecutor(RetryPolicy(max_retries=4, backoff_base=10e-6))
        thread = _thread()
        assert exe.run(Flaky(2), thread=thread, device="dev", op="write",
                       deadline=1.0) == "ok"
        assert exe.deadline_exceeded == 0

    def test_thread_deadline_attribute_is_honoured(self):
        exe = RetryExecutor(RetryPolicy(max_retries=4, backoff_base=100e-6))
        thread = _thread()
        thread.deadline = 50e-6
        with pytest.raises(DeadlineExceededError):
            exe.run(Flaky(99), thread=thread, device="dev", op="write")

    def test_explicit_deadline_overrides_thread(self):
        exe = RetryExecutor(RetryPolicy(max_retries=4, backoff_base=10e-6))
        thread = _thread()
        thread.deadline = 1e-9  # would fire immediately
        assert exe.run(Flaky(1), thread=thread, device="dev", op="write",
                       deadline=1.0) == "ok"

    def test_run_at_honours_deadline(self):
        exe = RetryExecutor(RetryPolicy(max_retries=4, backoff_base=100e-6))
        with pytest.raises(DeadlineExceededError):
            exe.run_at(Flaky(99), at=0.0, device="dev", op="write",
                       deadline=50e-6)

    def test_no_deadline_keeps_old_behaviour(self):
        exe = RetryExecutor(RetryPolicy(max_retries=2, backoff_base=10e-6))
        thread = _thread()
        assert exe.run(Flaky(2), thread=thread, device="dev", op="write") == "ok"
        assert thread.now == pytest.approx(30e-6)


class TestJitter:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(backoff_base=10e-6, backoff_factor=2.0)
        assert policy.delay(0) == 10e-6
        assert policy.delay(3) == 80e-6
        assert policy._jitter_rng is None  # no RNG exists to drift

    def test_jitter_bounded_below_base(self):
        policy = RetryPolicy(backoff_base=10e-6, backoff_factor=2.0,
                             jitter=0.5, jitter_seed=11)
        for attempt in range(6):
            base = 10e-6 * 2.0**attempt
            d = policy.delay(attempt)
            assert base * 0.5 <= d <= base

    def test_same_seed_same_delays(self):
        a = RetryPolicy(jitter=0.5, jitter_seed=7)
        b = RetryPolicy(jitter=0.5, jitter_seed=7)
        c = RetryPolicy(jitter=0.5, jitter_seed=8)
        seq_a = [a.delay(i) for i in range(8)]
        seq_b = [b.delay(i) for i in range(8)]
        seq_c = [c.delay(i) for i in range(8)]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_jittered_retries_spread_threads(self):
        def total(seed):
            exe = RetryExecutor(RetryPolicy(
                max_retries=4, backoff_base=10e-6, jitter=0.9,
                jitter_seed=seed,
            ))
            thread = _thread()
            exe.run(Flaky(3), thread=thread, device="dev", op="write")
            return thread.now

        assert total(1) != total(2)  # different streams desynchronize
