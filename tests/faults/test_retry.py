"""RetryExecutor: backoff, exhaustion, escalation to device death."""

import pytest

from repro.faults.errors import (
    DeviceDeadError,
    RetryExhaustedError,
    StuckIOError,
    TransientWriteError,
)
from repro.faults.injector import FaultConfig, FaultInjector
from repro.faults.retry import RetryExecutor, RetryPolicy
from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread


def _thread():
    return VThread(0, VirtualClock())


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures, exc=None):
        self.failures = failures
        self.calls = 0
        self.exc = exc or TransientWriteError("dev", "write")

    def __call__(self, at=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return "ok" if at is None else at


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)


def test_delay_is_exponential():
    policy = RetryPolicy(backoff_base=10e-6, backoff_factor=2.0)
    assert policy.delay(0) == pytest.approx(10e-6)
    assert policy.delay(3) == pytest.approx(80e-6)


def test_run_retries_then_succeeds_charging_backoff():
    policy = RetryPolicy(max_retries=4, backoff_base=10e-6, backoff_factor=2.0)
    exe = RetryExecutor(policy)
    thread = _thread()
    fn = Flaky(2)
    assert exe.run(fn, thread=thread, device="dev", op="write") == "ok"
    assert fn.calls == 3
    assert exe.retries == 2
    # two backoffs: 10us + 20us
    assert thread.now == pytest.approx(30e-6)
    assert exe.consecutive["dev"] == 0  # success resets the streak


def test_run_exhausts_into_typed_error():
    exe = RetryExecutor(RetryPolicy(max_retries=2, backoff_base=0.0))
    with pytest.raises(RetryExhaustedError) as err:
        exe.run(Flaky(99), thread=_thread(), device="dev", op="write")
    assert err.value.attempts == 3
    assert exe.exhausted == 1


def test_stuck_io_timeout_added_to_backoff():
    exe = RetryExecutor(RetryPolicy(max_retries=1, backoff_base=10e-6))
    thread = _thread()
    stuck = StuckIOError("dev", "read", timeout=1e-3)
    exe.run(Flaky(1, exc=stuck), thread=thread, device="dev", op="read")
    assert thread.now == pytest.approx(1e-3 + 10e-6)


def test_run_at_shifts_start_time():
    exe = RetryExecutor(RetryPolicy(max_retries=4, backoff_base=10e-6))
    fn = Flaky(1)
    done = exe.run_at(fn, at=1.0, device="dev", op="write")
    assert done == pytest.approx(1.0 + 10e-6)


def test_escalation_kills_device_through_injector():
    injector = FaultInjector(FaultConfig())
    policy = RetryPolicy(max_retries=0, backoff_base=0.0, fail_threshold=3)
    exe = RetryExecutor(policy, injector=injector)
    for _ in range(2):
        with pytest.raises(RetryExhaustedError):
            exe.run(Flaky(99), thread=_thread(), device="dev", op="write")
    with pytest.raises(DeviceDeadError):
        exe.run(Flaky(99), thread=_thread(), device="dev", op="write")
    assert injector.is_dead("dev")


def test_non_transient_errors_propagate_unretried():
    exe = RetryExecutor(RetryPolicy())
    fn = Flaky(99, exc=DeviceDeadError("dev"))
    with pytest.raises(DeviceDeadError):
        exe.run(fn, thread=_thread(), device="dev", op="read")
    assert fn.calls == 1
