"""Degraded mode: a dead Value Storage yields typed errors for its
keys while the rest of the store keeps serving — no index corruption."""

import pytest

from repro.core import pointers as ptr
from repro.core.checker import audit
from repro.core.prism import Prism
from repro.faults.errors import ReadDegradedError
from repro.faults.injector import FaultConfig
from tests.conftest import KB, small_prism_config


@pytest.fixture
def store() -> Prism:
    # Injector attached but silent (zero rates): faults only happen
    # when the test kills a device.  No SVC, so every read goes to the
    # owning medium and degraded reads cannot hide behind the cache.
    return Prism(
        small_prism_config(
            pwb_capacity=16 * KB,
            enable_svc=False,
            faults=FaultConfig(),
        )
    )


def _keys_by_vs(store):
    """Map vs_id -> [keys whose record lives in that Value Storage]."""
    out = {vs.vs_id: [] for vs in store.storages}
    for key, idx in store.index.items():
        loc = ptr.decode(ptr.clear_dirty(store.hsit.location_word(idx)))
        if loc.in_vs:
            out[loc.vs_id].append(key)
    return out


def _load(store, n=80):
    for i in range(n):
        store.put(b"k%04d" % i, bytes([i % 256]) * 700)
    store.flush()


def test_dead_vs_reads_are_typed_not_corrupt(store):
    _load(store)
    by_vs = _keys_by_vs(store)
    assert by_vs[0] and by_vs[1], "expected records on both storages"
    dead = store.storages[0].ssd.name
    store.injector.kill_device(dead)

    for key in by_vs[0]:
        with pytest.raises(ReadDegradedError) as err:
            store.get(key)
        assert err.value.device == dead
        assert err.value.key == key
    for key in by_vs[1]:
        assert store.get(key) is not None

    # The index survives intact: the audit's omniscient view still
    # proves cross-media invariants, dead device included.
    assert audit(store).ok


def test_scan_over_dead_vs_is_typed(store):
    _load(store)
    by_vs = _keys_by_vs(store)
    store.injector.kill_device(store.storages[0].ssd.name)
    with pytest.raises(ReadDegradedError):
        store.scan(min(by_vs[0]), len(store))


def test_writes_keep_flowing_to_healthy_storage(store):
    _load(store)
    store.injector.kill_device(store.storages[0].ssd.name)
    healthy = store.storages[1].vs_id
    for i in range(60):
        store.put(b"new%04d" % i, b"x" * 700)
    store.flush()
    by_vs = _keys_by_vs(store)
    fresh_on_dead = [k for k in by_vs[0] if k.startswith(b"new")]
    assert not fresh_on_dead, "new data routed to a dead device"
    assert any(k.startswith(b"new") for k in by_vs[healthy])
    for i in range(60):
        assert store.get(b"new%04d" % i) == b"x" * 700
    assert audit(store).ok


def test_all_storages_dead_degrades_without_corruption(store):
    for vs in store.storages:
        store.injector.kill_device(vs.ssd.name)
    # Puts land in the PWB; reclamation cannot find a healthy target
    # and must abort without releasing (or corrupting) the buffer.
    for i in range(20):
        store.put(b"p%03d" % i, b"y" * 700)
    assert len(store.events.of_kind("reclaim_failed")) > 0
    for i in range(20):
        assert store.get(b"p%03d" % i) == b"y" * 700
    assert audit(store).ok
