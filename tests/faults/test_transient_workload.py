"""End-to-end: a seeded mixed workload under transient faults finishes
with retries doing the masking — no data loss, invariants intact."""

import random

from repro.core.checker import audit
from repro.core.prism import Prism
from repro.faults.injector import FaultConfig
from tests.conftest import KB, small_prism_config


def _build(rate: float) -> Prism:
    faults = None
    if rate > 0.0:
        faults = FaultConfig(
            seed=11,
            read_error_rate=rate,
            write_error_rate=rate,
            flush_error_rate=rate,
            stuck_rate=rate / 10,
        )
    return Prism(
        small_prism_config(
            pwb_capacity=16 * KB,
            svc_capacity=32 * KB,
            faults=faults,
        )
    )


def _ycsb_a(store, num_ops=1200, num_keys=150, seed=5):
    """50/50 update/read mix (YCSB-A shape); returns the expected map."""
    rng = random.Random(seed)
    expected = {}
    for i in range(num_ops):
        key = b"k%04d" % rng.randrange(num_keys)
        if rng.random() < 0.5:
            value = bytes([i % 256]) * rng.randrange(200, 900)
            store.put(key, value)
            expected[key] = value
        else:
            got = store.get(key)
            assert got == expected.get(key)
    return expected


def test_faulty_run_completes_with_retries_and_no_loss():
    store = _build(2e-3)
    expected = _ycsb_a(store)
    assert store.injector.total_injected > 0, "rate too low to test anything"
    assert store.retry_exec.retries > 0
    for key, value in expected.items():
        assert store.get(key) == value
    assert audit(store).ok
    store.flush()
    assert audit(store).ok


def test_faulty_run_survives_crash_recovery():
    store = _build(2e-3)
    expected = _ycsb_a(store)
    store.crash()
    store.recover()
    for key, value in expected.items():
        assert store.get(key) == value
    assert audit(store).ok


def test_zero_fault_run_bit_identical_to_uninstrumented():
    """An attached injector with all-zero rates must not perturb
    virtual time, placement, or results in any way."""
    plain = _build(0.0)
    hooked = Prism(
        small_prism_config(
            pwb_capacity=16 * KB,
            svc_capacity=32 * KB,
            faults=FaultConfig(),  # injector present, every rate zero
        )
    )
    assert plain.injector is None and hooked.injector is not None
    _ycsb_a(plain)
    _ycsb_a(hooked)
    assert plain.clock.now == hooked.clock.now  # exact, not approx
    assert hooked.injector.total_injected == 0
    assert hooked.injector.consults > 0  # the hooks really were in play
    for key, idx in plain.index.items():
        assert hooked.hsit.location_word(idx) == plain.hsit.location_word(idx)
