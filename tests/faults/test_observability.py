"""Fault and retry activity is observable through the PR-1 obs layer:
structured events on the store's EventLog, counters in the registry."""

from repro.core.prism import Prism
from repro.faults.injector import FaultConfig
from tests.conftest import small_prism_config


def _faulty_store() -> Prism:
    # Flush errors fire on the put path's HSIT publish, so a handful of
    # puts is enough to exercise inject -> retry -> success.
    return Prism(
        small_prism_config(
            enable_metrics=True,
            faults=FaultConfig(seed=2, flush_error_rate=0.2, max_faults=4),
        )
    )


def test_fault_and_retry_events_reach_the_store_log():
    store = _faulty_store()
    for i in range(60):
        store.put(b"k%03d" % i, b"v" * 300)
    faults = store.events.of_kind("fault")
    retries = store.events.of_kind("retry")
    assert len(faults) == 4  # max_faults cap respected
    assert len(retries) == 4  # every one masked by a retry
    for event in faults:
        assert event["fault"] == "flush_error"
        assert event["device"] == store.nvm.name
    for event in retries:
        assert event["op"] == "flush"
        assert event["error"] == "FlushError"
        assert event["attempt"] >= 1


def test_counters_track_injections_and_retries():
    store = _faulty_store()
    for i in range(60):
        store.put(b"k%03d" % i, b"v" * 300)
    counters = store.metrics.counters
    assert counters["faults.injected.flush_error"].value == 4
    assert counters["faults.retries"].value == 4
    assert "faults.retry_exhausted" not in counters  # nothing gave up
    assert store.injector.total_injected == 4
    assert store.retry_exec.retries == 4


def test_silent_injector_emits_nothing():
    store = Prism(
        small_prism_config(enable_metrics=True, faults=FaultConfig())
    )
    for i in range(30):
        store.put(b"k%03d" % i, b"v" * 300)
    assert store.events.of_kind("fault") == []
    assert store.events.of_kind("retry") == []
    assert not any(name.startswith("faults.") for name in store.metrics.counters)
