"""FaultInjector: determinism, rates, budget, device death."""

import pytest

from repro.faults.errors import (
    DeviceDeadError,
    FlushError,
    StuckIOError,
    TransientReadError,
    TransientWriteError,
)
from repro.faults.injector import FaultConfig, FaultInjector
from repro.obs.metrics import MetricsRegistry


class FakeDevice:
    def __init__(self, name="dev0"):
        self.name = name


def _drive(injector, n=500, op="read"):
    """Consult ``n`` times; return the indices where a fault fired."""
    dev = FakeDevice()
    fired = []
    for i in range(n):
        try:
            injector.before_io(dev, op, at=float(i))
        except (TransientReadError, TransientWriteError, StuckIOError):
            fired.append(i)
    return fired


def test_rates_validated():
    with pytest.raises(ValueError):
        FaultConfig(read_error_rate=1.5)
    with pytest.raises(ValueError):
        FaultConfig(stuck_timeout=-1.0)


def test_zero_rates_never_inject_and_never_draw():
    inj = FaultInjector(FaultConfig(seed=3))
    state = inj.rng.getstate()
    assert _drive(inj, 200) == []
    assert inj.rng.getstate() == state  # no RNG draws at zero rates
    assert inj.total_injected == 0
    assert inj.consults == 200


def test_same_seed_same_schedule():
    a = _drive(FaultInjector(FaultConfig(seed=7, read_error_rate=0.05)))
    b = _drive(FaultInjector(FaultConfig(seed=7, read_error_rate=0.05)))
    c = _drive(FaultInjector(FaultConfig(seed=8, read_error_rate=0.05)))
    assert a == b
    assert a and a != c


def test_certain_rates_always_inject():
    inj = FaultInjector(FaultConfig(read_error_rate=1.0, write_error_rate=1.0))
    dev = FakeDevice()
    with pytest.raises(TransientReadError):
        inj.before_io(dev, "read", 0.0)
    with pytest.raises(TransientWriteError):
        inj.before_io(dev, "write", 0.0)
    with pytest.raises(FlushError):
        FaultInjector(FaultConfig(flush_error_rate=1.0)).before_flush(dev, 0.0)


def test_stuck_io_carries_timeout():
    inj = FaultInjector(FaultConfig(stuck_rate=1.0, stuck_timeout=5e-3))
    with pytest.raises(StuckIOError) as err:
        inj.before_io(FakeDevice(), "read", 0.0)
    assert err.value.timeout == 5e-3
    assert err.value.transient


def test_max_faults_budget():
    inj = FaultInjector(FaultConfig(read_error_rate=1.0, max_faults=2))
    assert len(_drive(inj, 50)) == 2
    assert inj.total_injected == 2


def test_dead_device_raises_permanently():
    inj = FaultInjector(FaultConfig(dead_devices=("ssd1",)))
    with pytest.raises(DeviceDeadError):
        inj.before_io(FakeDevice("ssd1"), "read", 0.0)
    with pytest.raises(DeviceDeadError):
        inj.before_flush(FakeDevice("ssd1"), 0.0)
    inj.before_io(FakeDevice("ssd0"), "read", 0.0)  # others unaffected


def test_kill_device_idempotent_and_observable():
    metrics = MetricsRegistry()
    inj = FaultInjector(FaultConfig(), metrics=metrics)
    inj.kill_device("ssd0", at=1.0)
    inj.kill_device("ssd0", at=2.0)
    assert inj.is_dead("ssd0")
    assert metrics.counter("faults.device_deaths").value == 1
    assert len(inj.events.of_kind("device_dead")) == 1


def test_injection_events_carry_structure():
    inj = FaultInjector(FaultConfig(write_error_rate=1.0))
    with pytest.raises(TransientWriteError):
        inj.before_io(FakeDevice("nvme3"), "write", at=4.5)
    (event,) = inj.events.of_kind("fault")
    assert event["device"] == "nvme3"
    assert event["op"] == "write"
    assert event["fault"] == "write_error"
    assert event["at"] == 4.5
