"""The crash-exploration harness: discovery finds the protocol's
labels, and a crash at every one of them recovers cleanly."""

import pytest

from repro.faults.crash_sweep import (
    CrashSweep,
    default_ops,
    default_store_factory,
    main,
)

# Protocol points that any non-trivial workload must reach.
CORE_WORKLOAD_LABELS = {
    "put.allocated",
    "put.appended",
    "put.done",
    "pwb.append.pre",
    "pwb.append.persisted",
    "hsit.publish.pre",
    "hsit.publish.dirty",
    "hsit.publish.flushed",
    "hsit.publish.done",
}
CORE_RECOVERY_LABELS = {
    "recover.index_done",
    "recover.walked",
    "recover.flushed",
    "recover.done",
}


@pytest.fixture(scope="module")
def sweep() -> CrashSweep:
    return CrashSweep(default_store_factory, default_ops(160))


def test_discovery_splits_workload_and_recovery_labels(sweep):
    workload, recovery = sweep.discover()
    assert CORE_WORKLOAD_LABELS <= set(workload)
    assert CORE_RECOVERY_LABELS <= set(recovery)
    assert all(count >= 1 for count in workload.values())


def test_full_sweep_recovers_at_every_label(sweep):
    report = sweep.run()
    assert report.outcomes, "sweep found nothing to crash"
    failures = report.failures()
    assert not failures, report.summary()
    # every discovered label was actually exercised
    covered = {o.label for o in report.outcomes}
    assert covered == set(report.workload_labels) | set(report.recovery_labels)
    assert all(o.fired for o in report.outcomes)


def test_unreached_label_reports_not_fired(sweep):
    outcome = sweep.verify_label("put.allocated", occurrence=10**9)
    assert not outcome.fired
    assert not outcome.ok


def test_crash_during_recovery_is_idempotent(sweep):
    # Explicit satellite check on top of the sweep: die inside the
    # recovery walk, then recover again from the half-recovered state.
    for label in sorted(CORE_RECOVERY_LABELS):
        outcome = sweep.verify_recovery_label(label)
        assert outcome.fired, label
        assert outcome.ok, (label, outcome.audit_violations,
                            outcome.durability_violations)


def test_cli_smoke(capsys):
    assert main(["--ops", "120"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


@pytest.mark.slow_faults
def test_fuzzed_occurrences_all_recover():
    sweep = CrashSweep(default_store_factory, default_ops(400))
    outcomes = sweep.fuzz(trials=30, seed=3)
    bad = [o for o in outcomes if o.fired and not o.ok]
    assert not bad, [str(o) for o in bad]
    assert sum(1 for o in outcomes if o.fired) >= 25
