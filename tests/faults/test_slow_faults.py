"""Fail-slow (gray-failure) injection: penalties, windows, determinism."""

import pytest

from repro.core.config import PrismConfig
from repro.core.prism import Prism
from repro.faults.injector import (
    FaultConfig,
    FaultInjector,
    SlowFault,
    slow_store_devices,
    store_device_names,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.vthread import VThread
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from repro.storage.ssd import SSDDevice


def _ssd(config=None):
    ssd = SSDDevice(FLASH_SSD_GEN4_SPEC, name="ssd0")
    if config is not None:
        ssd.attach_injector(FaultInjector(config))
    return ssd


class TestSlowFaultSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlowFault(multiplier=0.5)
        with pytest.raises(ValueError):
            SlowFault(add_latency=-1.0)
        with pytest.raises(ValueError):
            SlowFault(duration=0.0)
        with pytest.raises(ValueError):
            SlowFault(stall_interval=1.0, stall_duration=2.0)

    def test_penalty_combines_multiplier_and_floor(self):
        fault = SlowFault(multiplier=10.0, add_latency=5e-6)
        base = 50e-6
        assert fault.penalty(base, at=0.0) == pytest.approx(9 * base + 5e-6)

    def test_onset_and_duration_window(self):
        fault = SlowFault(multiplier=2.0, start=1.0, duration=2.0)
        assert fault.penalty(1e-6, at=0.5) == 0.0
        assert fault.penalty(1e-6, at=1.0) > 0.0
        assert fault.penalty(1e-6, at=2.9) > 0.0
        assert fault.penalty(1e-6, at=3.0) == 0.0

    def test_stall_bursts_open_at_interval_heads(self):
        fault = SlowFault(
            multiplier=1.0, stall_interval=1.0, stall_duration=0.25,
            stall_penalty=1e-3,
        )
        assert fault.penalty(1e-6, at=0.1) == pytest.approx(1e-3)
        assert fault.penalty(1e-6, at=0.5) == 0.0
        assert fault.penalty(1e-6, at=2.2) == pytest.approx(1e-3)


class TestInjectorSlowPath:
    def test_ssd_read_inflated_by_multiplier(self):
        ssd = _ssd(FaultConfig(slow=(SlowFault(multiplier=10.0),)))
        slow = VThread(0)
        ssd.write_raw(0, b"x" * 4096)
        ssd.read(slow, 0, 4096)
        fast = VThread(1)
        _ssd(FaultConfig()).read(fast, 0, 4096)
        extra = 9 * FLASH_SSD_GEN4_SPEC.read_latency
        assert slow.now == pytest.approx(fast.now + extra)
        assert ssd.injector.slow_injections == 1

    def test_write_uses_write_latency_base(self):
        ssd = _ssd(FaultConfig(slow=(SlowFault(multiplier=3.0),)))
        thread = VThread(0)
        ssd.write(thread, 0, b"y" * 4096)
        clean = VThread(1)
        _ssd(FaultConfig()).write(clean, 0, b"y" * 4096)
        extra = 2 * FLASH_SSD_GEN4_SPEC.write_latency
        assert thread.now == pytest.approx(clean.now + extra)

    def test_device_filter_spares_other_devices(self):
        inj = FaultInjector(
            FaultConfig(slow=(SlowFault(devices=("other",), multiplier=5.0),))
        )
        ssd = SSDDevice(FLASH_SSD_GEN4_SPEC, name="ssd0")
        ssd.attach_injector(inj)
        thread = VThread(0)
        ssd.read(thread, 0, 4096)
        clean = VThread(1)
        _ssd(FaultConfig()).read(clean, 0, 4096)
        assert thread.now == clean.now
        assert inj.slow_injections == 0

    def test_never_raises_and_counts_metrics(self):
        metrics = MetricsRegistry()
        inj = FaultInjector(
            FaultConfig(slow=(SlowFault(multiplier=2.0),)), metrics=metrics
        )
        ssd = SSDDevice(FLASH_SSD_GEN4_SPEC, name="ssd0")
        ssd.attach_injector(inj)
        for i in range(5):
            ssd.read(VThread(i), 0, 4096)
        assert inj.slow_injections == 5
        assert metrics.counter("fault.slow_injections").value == 5
        assert [e["kind"] for e in inj.events].count("slow_onset") == 1

    def test_zero_config_draws_nothing_and_returns_zero(self):
        inj = FaultInjector(FaultConfig(seed=3))
        state = inj.rng.getstate()
        ssd = SSDDevice(FLASH_SSD_GEN4_SPEC, name="ssd0")
        assert inj.before_io(ssd, "read", 0.0) == 0.0
        assert inj.before_flush(ssd, 0.0) == 0.0
        assert inj.rng.getstate() == state
        assert inj.slow_injections == 0

    def test_add_and_clear_mid_run(self):
        inj = FaultInjector(FaultConfig())
        ssd = SSDDevice(FLASH_SSD_GEN4_SPEC, name="ssd0")
        assert inj.before_io(ssd, "read", 0.0) == 0.0
        inj.add_slow_fault(SlowFault(multiplier=2.0, start=1.0), at=1.0)
        assert inj.before_io(ssd, "read", 1.5) > 0.0
        assert inj.clear_slow_faults(at=2.0) == 1
        assert inj.before_io(ssd, "read", 2.5) == 0.0

    def test_same_schedule_is_deterministic(self):
        def run():
            ssd = _ssd(FaultConfig(slow=(SlowFault(
                multiplier=4.0, stall_interval=1e-3, stall_duration=1e-4,
                stall_penalty=1e-3,
            ),)))
            thread = VThread(0)
            for _ in range(50):
                ssd.read(thread, 0, 4096)
            return thread.now, ssd.injector.slow_injections

        assert run() == run()


class TestSlowStoreDevices:
    def test_inflates_every_store_device(self):
        store = Prism(PrismConfig(faults=FaultConfig()))
        names = slow_store_devices(store, at=0.0, multiplier=10.0)
        assert set(names) == set(store_device_names(store))
        thread = VThread(0, store.clock)
        store.put(b"k", b"v" * 128, thread)
        assert store.injector.slow_injections > 0
        value = store.get(b"k", thread)
        assert value == b"v" * 128  # gray failure never loses data

    def test_requires_an_injector(self):
        store = Prism(PrismConfig())
        with pytest.raises(ValueError):
            slow_store_devices(store)
