"""Determinism and zero-overhead guarantees for the simulator hot path.

Two properties the perf work (see docs/simulation-model.md,
"Performance engineering") must never erode:

1. **Run-to-run determinism.**  The same seeded workload produces a
   byte-identical metrics JSON and the exact same final virtual time,
   every run — whether observability is on or off.
2. **Observability is free when off.**  With ``enable_metrics=False``
   the per-op path allocates nothing in the metrics module; simulated
   results (virtual duration, final clock, store counters) match the
   instrumented run bit for bit.
"""

from __future__ import annotations

import json
import tracemalloc

from repro.bench.runner import preload, run_workload
from repro.bench.stores import build_prism
from repro.workloads.ycsb import WORKLOADS

NUM_OPS = 4_000
NUM_KEYS = 3_000
NUM_THREADS = 4


def _run(enable_metrics: bool):
    store = build_prism(num_threads=NUM_THREADS, enable_metrics=enable_metrics)
    preload(store, NUM_KEYS, num_threads=NUM_THREADS)
    result = run_workload(
        store,
        WORKLOADS["A"],
        NUM_OPS,
        NUM_KEYS,
        NUM_THREADS,
        collect_metrics=enable_metrics,
    )
    return store, result


def test_seeded_run_is_byte_identical_with_obs_on():
    store1, res1 = _run(enable_metrics=True)
    store2, res2 = _run(enable_metrics=True)
    json1 = json.dumps(res1.metrics, sort_keys=True)
    json2 = json.dumps(res2.metrics, sort_keys=True)
    assert json1 == json2
    # repr() equality is bit-equality for floats.
    assert repr(res1.duration) == repr(res2.duration)
    assert repr(store1.clock.now) == repr(store2.clock.now)
    assert res1.stats == res2.stats


def test_seeded_run_is_identical_with_obs_off():
    store1, res1 = _run(enable_metrics=False)
    store2, res2 = _run(enable_metrics=False)
    assert res1.metrics is None and res2.metrics is None
    assert repr(res1.duration) == repr(res2.duration)
    assert repr(store1.clock.now) == repr(store2.clock.now)
    assert res1.stats == res2.stats


def test_obs_off_matches_obs_on_simulated_results():
    """Instrumentation must observe, never perturb: virtual outcomes
    are bit-identical whether metrics are recorded or not."""
    store_on, res_on = _run(enable_metrics=True)
    store_off, res_off = _run(enable_metrics=False)
    assert repr(res_on.duration) == repr(res_off.duration)
    assert repr(store_on.clock.now) == repr(store_off.clock.now)
    assert res_on.stats == res_off.stats
    assert [repr(s) for s in res_on.latency.samples] == [
        repr(s) for s in res_off.latency.samples
    ]


def test_obs_off_allocates_nothing_in_metrics_module():
    """The zero-cost fast path: with metrics disabled, running ops
    must not allocate per-op objects inside repro/obs/metrics.py (no
    instrument lookups, records, or closures).  The only allowed
    allocations are ``EventLog.emit`` calls — the event log stays on
    regardless of the metrics switch (Figure 17 needs GC events) and
    fires per *reclamation*, not per op."""
    import inspect

    import repro.obs.metrics as metrics_mod

    store = build_prism(num_threads=NUM_THREADS, enable_metrics=False)
    preload(store, NUM_KEYS, num_threads=NUM_THREADS)
    metrics_file = metrics_mod.__file__
    emit_lines, emit_start = inspect.getsourcelines(
        metrics_mod.EventLog.emit
    )
    emit_range = range(emit_start, emit_start + len(emit_lines))
    tracemalloc.start()
    try:
        run_workload(
            store,
            WORKLOADS["A"],
            NUM_OPS,
            NUM_KEYS,
            NUM_THREADS,
            collect_metrics=False,
        )
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    obs_allocs = [
        stat
        for stat in snapshot.statistics("lineno")
        if stat.traceback[0].filename == metrics_file
        and stat.traceback[0].lineno not in emit_range
    ]
    assert obs_allocs == [], f"metrics module allocated: {obs_allocs}"
    # And the event volume is reclamation-scale, not op-scale.
    assert len(store.events) < NUM_OPS / 10
