import pytest

from repro.bench.__main__ import COMMANDS, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-figure"])


def test_scalars_runs(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "1.0")
    assert main(["scalars", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "NVM bytes/key" in out
    assert "recovery" in out
