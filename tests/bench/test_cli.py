import pytest

from repro.bench.__main__ import COMMANDS, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-figure"])


def test_scalars_runs(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "1.0")
    assert main(["scalars", "--scale", "0.05", "--metrics-out", "none"]) == 0
    out = capsys.readouterr().out
    assert "NVM bytes/key" in out
    assert "recovery" in out


def test_experiment_emits_metrics_json(capsys, monkeypatch, tmp_path):
    """Acceptance: running an experiment produces a metrics JSON with
    latency histograms, device series, and structured events."""
    import json

    monkeypatch.setenv("REPRO_SCALE", "1.0")
    out_path = tmp_path / "fig17.metrics.json"
    assert main(["fig17", "--scale", "0.05", "--metrics-out", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert payload["experiment"] == "fig17"
    assert payload["runs"]
    run = next(iter(payload["runs"].values()))
    hist = run["histograms"]["op.all"]
    assert hist["count"] > 0
    assert hist["p50_us"] > 0 and hist["p99_us"] > 0
    assert any(name.endswith(".queue_depth") for name in run["series"])
    assert any(name.endswith(".utilization") for name in run["series"])
    assert "reclaim" in run["events"] or "gc" in run["events"]
