from repro.bench.stores import (
    DEFAULT_DATASET,
    build_kvell,
    build_matrixkv,
    build_prism,
    build_rocksdb_nvm,
    build_slmdb,
)

MB = 1024**2


def test_prism_cost_parity_ratios():
    """Table 1 scaled: DRAM cache 20% and NVM buffer 16% of the data."""
    store = build_prism(dataset_bytes=100 * MB, num_threads=4)
    assert store.config.svc_capacity == 20 * MB
    assert store.config.pwb_capacity * 4 == 16 * MB


def test_kvell_gets_dram_instead_of_nvm():
    store = build_kvell(dataset_bytes=100 * MB)
    assert store.config.page_cache_bytes == 32 * MB


def test_matrixkv_split():
    store = build_matrixkv(dataset_bytes=100 * MB)
    assert store.config.block_cache_bytes == 26 * MB
    assert store.config.container_bytes == 8 * MB


def test_rocksdb_nvm_builds():
    store = build_rocksdb_nvm(dataset_bytes=100 * MB)
    assert store.config.block_cache_bytes == 26 * MB


def test_slmdb_builds():
    store = build_slmdb()
    assert store.config.memtable_bytes == 1 * MB


def test_stores_expose_common_interface():
    for maker in (build_prism, build_kvell, build_matrixkv, build_rocksdb_nvm, build_slmdb):
        store = maker()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert store.scan(b"k", 1)[0] == (b"k", b"v")
        assert store.ssd_bytes_written() >= 0
        assert isinstance(store.stats(), dict)
        assert store.name


def test_hsit_sized_for_expected_keys():
    store = build_prism(expected_keys=1000)
    assert store.config.hsit_capacity >= 4000
