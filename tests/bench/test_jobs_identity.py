"""Acceptance: ``--jobs N`` output is byte-identical to ``--jobs 1``.

One bench experiment and one crash sweep, each run serially and with a
4-worker pool, compared at the byte level — the merged metrics JSON
and the printed report for the experiment, the full verdict list for
the sweep.  Any nondeterminism introduced by the fan-out (completion
order leaking into merge order, worker-local state, pickling drift)
fails these tests.
"""

from __future__ import annotations

from repro.bench.__main__ import main
from repro.faults.crash_sweep import CrashSweep, default_ops, default_store_factory


def _run_cli(monkeypatch, capsys, tmp_path, jobs: int) -> tuple[bytes, str]:
    out_path = tmp_path / f"fig11.jobs{jobs}.metrics.json"
    # Touch REPRO_JOBS through monkeypatch so teardown restores it
    # (main() exports the flag into the environment).
    monkeypatch.setenv("REPRO_JOBS", "1")
    monkeypatch.setenv("REPRO_SCALE", "1.0")
    assert main([
        "fig11", "--scale", "0.05",
        "--metrics-out", str(out_path),
        "--jobs", str(jobs),
    ]) == 0
    return out_path.read_bytes(), capsys.readouterr().out


def test_bench_experiment_byte_identical_across_jobs(
    monkeypatch, capsys, tmp_path
):
    serial_json, serial_out = _run_cli(monkeypatch, capsys, tmp_path, jobs=1)
    pooled_json, pooled_out = _run_cli(monkeypatch, capsys, tmp_path, jobs=4)
    assert pooled_json == serial_json
    # The printed tables must match too (paths in the trailing
    # "metrics: ..." line differ by construction — drop it).
    strip = lambda s: [l for l in s.splitlines() if not l.startswith("metrics:")]
    assert strip(pooled_out) == strip(serial_out)


def test_crash_sweep_byte_identical_across_jobs():
    ops = default_ops(160)
    serial = CrashSweep(default_store_factory, ops).run(jobs=1)
    pooled = CrashSweep(default_store_factory, ops).run(jobs=4)
    assert serial.outcomes, "sweep found nothing to crash"
    assert [str(o) for o in pooled.outcomes] == [str(o) for o in serial.outcomes]
    assert pooled.summary() == serial.summary()
    assert pooled.workload_labels == serial.workload_labels
    assert pooled.recovery_labels == serial.recovery_labels
