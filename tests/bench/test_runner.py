import pytest

from repro.bench.runner import preload, run_workload
from repro.bench.stores import build_prism
from repro.core.prism import Prism
from repro.workloads import WORKLOADS
from tests.conftest import small_prism_config


@pytest.fixture
def store():
    return Prism(small_prism_config(num_threads=4))


def test_preload_inserts_all_keys(store):
    preload(store, 500, value_size=128, num_threads=4)
    assert len(store) == 500


def test_preload_random_order(store):
    """LOAD happens 'in random order' (§7.1): inserts are shuffled."""
    preload(store, 300, value_size=64, num_threads=1)
    # if insertion were sequential the index would have split on the
    # rightmost leaf only; shuffled inserts spread the data layer.
    assert len(store) == 300


def test_run_workload_counts_and_latency(store):
    preload(store, 400, value_size=128, num_threads=4)
    result = run_workload(
        store, WORKLOADS["A"], 1000, 400, num_threads=4, value_size=128
    )
    assert result.ops == 1000
    assert result.duration > 0
    assert result.throughput > 0
    assert len(result.latency) == 1000
    assert set(result.per_kind) <= {"read", "update"}


def test_run_workload_validates_ops(store):
    with pytest.raises(ValueError):
        run_workload(store, WORKLOADS["C"], 0, 100)


def test_load_workload_populates_store(store):
    result = run_workload(
        store, WORKLOADS["LOAD"], 400, 400, num_threads=2, value_size=128
    )
    assert result.ops == 400
    assert len(store) == 400


def test_warmup_not_recorded(store):
    preload(store, 300, value_size=128, num_threads=2)
    result = run_workload(
        store,
        WORKLOADS["C"],
        500,
        300,
        num_threads=2,
        value_size=128,
        warmup_ops=200,
    )
    assert result.ops == 500
    assert len(result.latency) == 500


def test_waf_computed_over_measured_window(store):
    preload(store, 300, value_size=128, num_threads=2)
    result = run_workload(
        store, WORKLOADS["C"], 300, 300, num_threads=2, value_size=128
    )
    assert result.waf == 0.0  # read-only window writes nothing


def test_timeline_collection(store):
    preload(store, 300, value_size=128, num_threads=2)
    result = run_workload(
        store,
        WORKLOADS["A"],
        600,
        300,
        num_threads=2,
        value_size=128,
        timeline_bucket=1e-3,
    )
    assert result.timeline is not None
    assert sum(result.timeline.buckets.values()) == 600


def test_different_workloads_use_different_streams(store):
    preload(store, 300, value_size=128, num_threads=2)
    r1 = run_workload(store, WORKLOADS["B"], 200, 300, num_threads=2, value_size=128)
    r2 = run_workload(store, WORKLOADS["C"], 200, 300, num_threads=2, value_size=128)
    # same seed, different workloads -> different key sequences, so
    # the second run cannot be a 100% cache replay of the first
    assert r1.ops == r2.ops == 200


def test_summary_string(store):
    preload(store, 100, value_size=128)
    result = run_workload(store, WORKLOADS["C"], 100, 100, num_threads=1, value_size=128)
    text = result.summary()
    assert "Prism" in text and "Kops" in text


def test_multi_thread_throughput_exceeds_single(capsys):
    one = build_prism(num_threads=1, dataset_bytes=512 * 1024, expected_keys=2000)
    many = build_prism(num_threads=8, dataset_bytes=512 * 1024, expected_keys=2000)
    preload(one, 500, value_size=512, num_threads=1)
    preload(many, 500, value_size=512, num_threads=8)
    r1 = run_workload(one, WORKLOADS["A"], 1500, 500, num_threads=1, value_size=512)
    r8 = run_workload(many, WORKLOADS["A"], 1500, 500, num_threads=8, value_size=512)
    assert r8.throughput > 2 * r1.throughput


def test_run_workload_collects_metrics(store):
    """Acceptance: every measured run carries a metrics snapshot with
    op latency histograms, per-SSD device series, and run gauges."""
    preload(store, 300, value_size=128, num_threads=2)
    result = run_workload(
        store, WORKLOADS["A"], 800, 300, num_threads=2, value_size=128
    )
    m = result.metrics
    assert m is not None
    hist = result.histogram("op.all")
    assert hist["count"] == 800
    assert hist["p50_us"] > 0
    assert hist["p99_us"] >= hist["p50_us"]
    assert "op.read" in m["histograms"] or "op.update" in m["histograms"]
    for vs_id in range(len(store.storages)):
        assert f"ssd.{vs_id}.queue_depth" in m["series"]
        assert f"ssd.{vs_id}.utilization" in m["series"]
    assert m["gauges"]["ops"] == 800
    assert m["gauges"]["throughput_ops"] == pytest.approx(result.throughput)


def test_run_workload_metrics_opt_out(store):
    preload(store, 200, value_size=128, num_threads=2)
    result = run_workload(
        store, WORKLOADS["C"], 200, 200, num_threads=2,
        value_size=128, collect_metrics=False,
    )
    assert result.metrics is None
    with pytest.raises(KeyError):
        result.histogram("op.all")


def test_metrics_collection_does_not_change_results(store):
    """collect_metrics only observes: throughput and latency are
    bit-identical with it on or off."""
    preload(store, 200, value_size=128, num_threads=2)
    on = run_workload(
        store, WORKLOADS["B"], 300, 200, num_threads=2, value_size=128
    )
    other = Prism(small_prism_config(num_threads=4))
    preload(other, 200, value_size=128, num_threads=2)
    off = run_workload(
        other, WORKLOADS["B"], 300, 200, num_threads=2,
        value_size=128, collect_metrics=False,
    )
    assert on.duration == off.duration
    assert on.latency.average() == off.latency.average()


def test_back_to_back_runs_get_fresh_registries():
    """A store reused across runs must not leak one run's samples into
    the next run's snapshot."""
    store = Prism(small_prism_config(num_threads=4, enable_metrics=True))
    own = store.metrics
    preload(store, 200, value_size=128, num_threads=2)
    r1 = run_workload(store, WORKLOADS["A"], 300, 200, num_threads=2, value_size=128)
    r2 = run_workload(store, WORKLOADS["A"], 300, 200, num_threads=2, value_size=128)
    assert r1.histogram("op.all")["count"] == 300
    assert r2.histogram("op.all")["count"] == 300
    # Phase histograms in each snapshot only cover that run's ops.
    p1 = r1.metrics["histograms"]["phase.put.pwb_append"]["count"]
    p2 = r2.metrics["histograms"]["phase.put.pwb_append"]["count"]
    assert p1 <= 300 and p2 <= 300
    # The store's own registry is restored after each run.
    assert store.metrics is own
