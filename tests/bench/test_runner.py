import pytest

from repro.bench.runner import preload, run_workload
from repro.bench.stores import build_prism
from repro.core.prism import Prism
from repro.workloads import WORKLOADS
from tests.conftest import small_prism_config


@pytest.fixture
def store():
    return Prism(small_prism_config(num_threads=4))


def test_preload_inserts_all_keys(store):
    preload(store, 500, value_size=128, num_threads=4)
    assert len(store) == 500


def test_preload_random_order(store):
    """LOAD happens 'in random order' (§7.1): inserts are shuffled."""
    preload(store, 300, value_size=64, num_threads=1)
    # if insertion were sequential the index would have split on the
    # rightmost leaf only; shuffled inserts spread the data layer.
    assert len(store) == 300


def test_run_workload_counts_and_latency(store):
    preload(store, 400, value_size=128, num_threads=4)
    result = run_workload(
        store, WORKLOADS["A"], 1000, 400, num_threads=4, value_size=128
    )
    assert result.ops == 1000
    assert result.duration > 0
    assert result.throughput > 0
    assert len(result.latency) == 1000
    assert set(result.per_kind) <= {"read", "update"}


def test_run_workload_validates_ops(store):
    with pytest.raises(ValueError):
        run_workload(store, WORKLOADS["C"], 0, 100)


def test_load_workload_populates_store(store):
    result = run_workload(
        store, WORKLOADS["LOAD"], 400, 400, num_threads=2, value_size=128
    )
    assert result.ops == 400
    assert len(store) == 400


def test_warmup_not_recorded(store):
    preload(store, 300, value_size=128, num_threads=2)
    result = run_workload(
        store,
        WORKLOADS["C"],
        500,
        300,
        num_threads=2,
        value_size=128,
        warmup_ops=200,
    )
    assert result.ops == 500
    assert len(result.latency) == 500


def test_waf_computed_over_measured_window(store):
    preload(store, 300, value_size=128, num_threads=2)
    result = run_workload(
        store, WORKLOADS["C"], 300, 300, num_threads=2, value_size=128
    )
    assert result.waf == 0.0  # read-only window writes nothing


def test_timeline_collection(store):
    preload(store, 300, value_size=128, num_threads=2)
    result = run_workload(
        store,
        WORKLOADS["A"],
        600,
        300,
        num_threads=2,
        value_size=128,
        timeline_bucket=1e-3,
    )
    assert result.timeline is not None
    assert sum(result.timeline.buckets.values()) == 600


def test_different_workloads_use_different_streams(store):
    preload(store, 300, value_size=128, num_threads=2)
    r1 = run_workload(store, WORKLOADS["B"], 200, 300, num_threads=2, value_size=128)
    r2 = run_workload(store, WORKLOADS["C"], 200, 300, num_threads=2, value_size=128)
    # same seed, different workloads -> different key sequences, so
    # the second run cannot be a 100% cache replay of the first
    assert r1.ops == r2.ops == 200


def test_summary_string(store):
    preload(store, 100, value_size=128)
    result = run_workload(store, WORKLOADS["C"], 100, 100, num_threads=1, value_size=128)
    text = result.summary()
    assert "Prism" in text and "Kops" in text


def test_multi_thread_throughput_exceeds_single(capsys):
    one = build_prism(num_threads=1, dataset_bytes=512 * 1024, expected_keys=2000)
    many = build_prism(num_threads=8, dataset_bytes=512 * 1024, expected_keys=2000)
    preload(one, 500, value_size=512, num_threads=1)
    preload(many, 500, value_size=512, num_threads=8)
    r1 = run_workload(one, WORKLOADS["A"], 1500, 500, num_threads=1, value_size=512)
    r8 = run_workload(many, WORKLOADS["A"], 1500, 500, num_threads=8, value_size=512)
    assert r8.throughput > 2 * r1.throughput
