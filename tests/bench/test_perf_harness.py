"""Tests for the wall-clock perf harness (repro.perf)."""

from __future__ import annotations

import json

import pytest

from repro.perf import check_regression, run_perf
from repro.perf.harness import SUITES, _scaled, _subsystem_of


def _payload(mode: str, ops_per_sec: float) -> dict:
    return {
        "schema": "bench-perf/v1",
        "mode": mode,
        "suites": {"ycsb_a": {"ops_per_sec": ops_per_sec}},
    }


class TestCheckRegression:
    def test_missing_baseline_skips(self, tmp_path):
        ok, msg = check_regression(
            _payload("smoke", 1000.0), str(tmp_path / "nope.json")
        )
        assert ok and "skipped" in msg

    def test_mode_mismatch_skips(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps(_payload("full", 1000.0)))
        ok, msg = check_regression(_payload("smoke", 1.0), str(path))
        assert ok and "skipped" in msg

    def test_within_tolerance_passes(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps(_payload("smoke", 1000.0)))
        ok, msg = check_regression(_payload("smoke", 750.0), str(path))
        assert ok and "PASS" in msg

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps(_payload("smoke", 1000.0)))
        ok, msg = check_regression(_payload("smoke", 600.0), str(path))
        assert not ok and "FAIL" in msg


class TestSubsystemMapping:
    def test_repro_package_maps_to_subpackage(self):
        assert _subsystem_of("/x/src/repro/storage/nvm.py") == "repro.storage"
        assert _subsystem_of("/x/src/repro/sim/clock.py") == "repro.sim"

    def test_repro_top_level_module_strips_extension(self):
        assert _subsystem_of("/x/src/repro/version.py") == "repro.version"

    def test_non_repro_files_bucketed(self):
        assert _subsystem_of("/usr/lib/python3/heapq.py") == "stdlib"
        assert _subsystem_of("<built-in>") == "interpreter"


class TestSuiteSpecs:
    def test_smoke_scaling_shrinks_but_keeps_floor(self):
        for spec in SUITES.values():
            small = _scaled(spec, smoke=True)
            assert small["ops"] <= spec["ops"]
            assert small["ops"] >= 200
            assert _scaled(spec, smoke=False) is spec

    def test_required_suites_present(self):
        # The ISSUE's pinned suite: three YCSB mixes, a scan-heavy run,
        # a TCQ read storm, and a sharded cluster run.
        assert {"ycsb_a", "ycsb_b", "ycsb_c", "scan_heavy", "tcq_storm",
                "cluster_4shard"} <= set(SUITES)


@pytest.mark.slow_perf
def test_smoke_run_end_to_end(tmp_path, monkeypatch):
    """A real (smoke) run produces the full schema for every suite."""
    out = tmp_path / "BENCH_PERF.json"
    payload = run_perf(smoke=True, out_path=str(out),
                       baseline_path=str(tmp_path / "absent.json"))
    assert out.exists()
    assert payload == json.loads(out.read_text())
    assert payload["mode"] == "smoke"
    for name, entry in payload["suites"].items():
        assert entry["ops"] > 0, name
        assert entry["ops_per_sec"] > 0, name
        assert entry["wall_seconds"] > 0, name
        assert entry["peak_rss_bytes"] > 0, name
        assert entry["virtual_seconds"] > 0, name
        cpu = entry["cpu_pct_by_subsystem"]
        assert cpu and any(k.startswith("repro.") for k in cpu)
        assert sum(cpu.values()) == pytest.approx(100.0, abs=1.0)
