"""Smoke tests for the experiment definitions (tiny parameters).

The full paper-scale runs live in benchmarks/; here we only verify
that each experiment function executes and returns sane structure.
"""

import pytest

from repro.bench import experiments as ex


def test_ycsb_comparison_structure():
    results = ex.ycsb_comparison(
        workloads=("A",), num_keys=400, num_ops=300, num_threads=2,
        stores=("Prism", "KVell"),
    )
    assert set(results) == {"Prism", "KVell"}
    assert results["Prism"]["A"].ops == 300


def test_slmdb_comparison_structure():
    results = ex.slmdb_comparison(workloads=("LOAD", "A"), num_keys=300, num_ops=200)
    assert set(results) == {"Prism", "SLM-DB"}
    assert results["SLM-DB"]["LOAD"].ops == 300


def test_skew_sweep_structure():
    results = ex.skew_sweep(
        thetas=(0.5, 0.99), workloads=("C",), num_keys=300, num_ops=200,
        num_threads=2, stores=("Prism",),
    )
    assert set(results["Prism"]["C"]) == {0.5, 0.99}


def test_thread_combining_sweep_structure():
    results = ex.thread_combining_sweep(
        queue_depths=(1, 8), num_keys=300, num_ops=200, num_threads=2
    )
    assert set(results) == {"TC", "TA"}
    assert set(results["TC"]) == {1, 8}


def test_waf_sweep_structure():
    results = ex.waf_sweep(
        thetas=(0.99,), value_sizes=(512,), num_keys=200, num_ops=400, num_threads=2
    )
    assert set(results) == {512}
    assert set(results[512]) == {"Prism", "KVell", "MatrixKV"}
    for store in results[512].values():
        assert all(w >= 0 for w in store.values())


def test_gc_timeline_structure():
    result, store = ex.gc_timeline(num_keys=400, num_ops=1500, num_threads=2)
    assert result.timeline is not None
    assert result.ops == 1500


def test_nvm_space_structure():
    out = ex.nvm_space(num_keys=500)
    assert out["keys"] == 500
    assert 10 < out["bytes_per_key"] < 500


def test_recovery_comparison_structure():
    out = ex.recovery_comparison(num_keys=400, num_threads=2)
    assert out["prism_keys"] == 400
    assert out["prism_seconds"] > 0
    assert out["kvell_seconds"] > 0


def test_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2.0")
    assert ex.scale() == 2.0
    assert ex.scaled(100) == 200
    monkeypatch.delenv("REPRO_SCALE")
    assert ex.scaled(100) == 100
