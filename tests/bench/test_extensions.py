from repro.bench.extensions import media_matrix
from repro.storage.specs import CXL_NVM_SPEC, OPTANE_SSD_SPEC, PCIE5_SSD_SPEC


def test_emerging_specs_sane():
    # CXL: slower than DCPMM but still sub-microsecond and cheaper.
    assert 0.3e-6 < CXL_NVM_SPEC.read_latency < 2e-6
    assert CXL_NVM_SPEC.cost_per_tb < 4096
    # Optane SSD: latency between NVM and flash.
    assert 1e-6 < OPTANE_SSD_SPEC.read_latency < 50e-6
    # Gen5 doubles Gen4 read bandwidth.
    assert PCIE5_SSD_SPEC.read_bandwidth >= 12 * 1024**3


def test_media_matrix_smoke():
    results = media_matrix(num_keys=400, num_ops=300, num_threads=2)
    assert set(results) == {
        "dcpmm+gen4 (paper)",
        "cxl-nvm+gen4",
        "dcpmm+optane-ssd",
        "dcpmm+gen5",
    }
    for runs in results.values():
        for wl in ("A", "C", "E"):
            assert runs[wl].throughput > 0


def test_optane_value_storage_cuts_miss_latency():
    results = media_matrix(num_keys=600, num_ops=500, num_threads=2)
    flash_p99 = results["dcpmm+gen4 (paper)"]["C"].latency.p99()
    optane_p99 = results["dcpmm+optane-ssd"]["C"].latency.p99()
    assert optane_p99 < flash_p99
