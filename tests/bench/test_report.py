from repro.bench.report import format_table, latency_table, ratio, throughput_table
from repro.bench.runner import RunResult
from repro.sim.stats import LatencyRecorder


def _result(name, workload, throughput_kops=100.0):
    rec = LatencyRecorder()
    for v in (1e-6, 2e-6, 3e-6):
        rec.record(v)
    ops = 3000
    return RunResult(
        store_name=name,
        workload=workload,
        ops=ops,
        duration=ops / (throughput_kops * 1e3),
        latency=rec,
        per_kind={},
        waf=1.5,
    )


def test_ratio():
    assert ratio(10, 4) == 2.5
    assert ratio(10, 0) == 0.0


def test_format_table_contains_cells():
    text = format_table("T", ["r1"], ["c1", "c2"], lambda r, c: f"{r}:{c}")
    assert "r1:c1" in text and "r1:c2" in text and "T" in text


def test_throughput_table():
    results = {
        "Prism": {"A": _result("Prism", "A", 700)},
        "KVell": {"A": _result("KVell", "A", 200)},
    }
    text = throughput_table("Fig7", results, ["A"])
    assert "700.0" in text and "200.0" in text

    missing = throughput_table("Fig7", results, ["A", "B"])
    assert "-" in missing


def test_latency_table():
    results = {"Prism": {"A": _result("Prism", "A")}}
    text = latency_table("Table 3", results, ["A"])
    assert "avg" in text and "median" in text and "99%" in text


def test_run_result_properties():
    r = _result("X", "C", 1000)
    assert r.mops == r.throughput / 1e6
    assert r.kops == r.throughput / 1e3
    empty = RunResult("X", "C", 0, 0.0, LatencyRecorder(), {}, 0.0)
    assert empty.throughput == 0.0
