from repro.bench.report import format_table, latency_table, ratio, throughput_table
from repro.bench.runner import RunResult
from repro.sim.stats import LatencyRecorder


def _result(name, workload, throughput_kops=100.0):
    rec = LatencyRecorder()
    for v in (1e-6, 2e-6, 3e-6):
        rec.record(v)
    ops = 3000
    return RunResult(
        store_name=name,
        workload=workload,
        ops=ops,
        duration=ops / (throughput_kops * 1e3),
        latency=rec,
        per_kind={},
        waf=1.5,
    )


def test_ratio():
    assert ratio(10, 4) == 2.5
    assert ratio(10, 0) == 0.0


def test_format_table_contains_cells():
    text = format_table("T", ["r1"], ["c1", "c2"], lambda r, c: f"{r}:{c}")
    assert "r1:c1" in text and "r1:c2" in text and "T" in text


def test_throughput_table():
    results = {
        "Prism": {"A": _result("Prism", "A", 700)},
        "KVell": {"A": _result("KVell", "A", 200)},
    }
    text = throughput_table("Fig7", results, ["A"])
    assert "700.0" in text and "200.0" in text

    missing = throughput_table("Fig7", results, ["A", "B"])
    assert "-" in missing


def test_latency_table():
    results = {"Prism": {"A": _result("Prism", "A")}}
    text = latency_table("Table 3", results, ["A"])
    assert "avg" in text and "median" in text and "99%" in text


def test_run_result_properties():
    r = _result("X", "C", 1000)
    assert r.mops == r.throughput / 1e6
    assert r.kops == r.throughput / 1e3
    empty = RunResult("X", "C", 0, 0.0, LatencyRecorder(), {}, 0.0)
    assert empty.throughput == 0.0


def test_iter_run_results_walks_nested_structures():
    from repro.bench.report import iter_run_results

    nested = {
        "Prism": {"A": _result("Prism", "A")},
        "sweep": {64: {"C": _result("Prism", "C")}},
        "pair": (_result("KVell", "A"), "not-a-result"),
    }
    found = dict(iter_run_results(nested))
    assert set(found) == {"Prism/A", "sweep/64/C", "pair/0"}


def test_metrics_payload_and_writer(tmp_path):
    import json

    from repro.bench.report import metrics_payload, write_metrics_json

    with_metrics = _result("Prism", "A")
    with_metrics.metrics = {"histograms": {"op.all": {"count": 3}}}
    results = {"Prism": {"A": with_metrics, "B": _result("Prism", "B")}}
    payload = metrics_payload("fig7", results)
    assert payload["experiment"] == "fig7"
    assert set(payload["runs"]) == {"Prism/A"}  # runs without metrics skipped
    out = tmp_path / "fig7.metrics.json"
    write_metrics_json(str(out), payload)
    loaded = json.loads(out.read_text())
    assert loaded["runs"]["Prism/A"]["histograms"]["op.all"]["count"] == 3
