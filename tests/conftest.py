"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import PrismConfig
from repro.core.prism import Prism
from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread
from repro.storage.nvm import NVMDevice
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from repro.storage.ssd import SSDDevice

KB = 1024
MB = 1024**2


def small_prism_config(**overrides) -> PrismConfig:
    """A Prism config tiny enough for fast unit tests."""
    defaults = dict(
        num_threads=2,
        num_ssds=2,
        ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB),
        pwb_capacity=64 * KB,
        svc_capacity=256 * KB,
        hsit_capacity=50_000,
        chunk_size=16 * KB,
    )
    defaults.update(overrides)
    return PrismConfig(**defaults)


@pytest.fixture
def prism() -> Prism:
    return Prism(small_prism_config())


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def thread(clock) -> VThread:
    return VThread(0, clock)


@pytest.fixture
def nvm() -> NVMDevice:
    return NVMDevice()


@pytest.fixture
def ssd() -> SSDDevice:
    return SSDDevice(FLASH_SSD_GEN4_SPEC.with_capacity(64 * MB))
